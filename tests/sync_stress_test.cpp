// Sync-layer stress suite (the PR-6 bug sweep): no-lost-wakeup property
// tests for all six primitives at high thread:proc ratios (64 threads on 4
// procs) on both backends and both lock disciplines, the barrier
// reuse-across-generations regression, a CondVar signal/broadcast stress
// that pins the suspend-callback monitor-release ordering under TSan, the
// panic paths of the new invariant checks, and bit-reproducibility of
// lock-bound sim runs under the queue discipline.

#include <gtest/gtest.h>

#include <atomic>
#include <deque>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "mp/native_platform.h"
#include "mp/sim_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

namespace {

using mp::threads::Barrier;
using mp::threads::CondVar;
using mp::threads::CountdownLatch;
using mp::threads::LockDiscipline;
using mp::threads::Mutex;
using mp::threads::RWLock;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;
using mp::threads::Semaphore;

enum class Backend { kSim, kNative };

constexpr int kProcs = 4;
constexpr int kThreads = 64;  // 16:1 thread:proc ratio

// Every test runs on {sim, native} × {queue, tas}: the property must hold
// for the new claim/release core and for the paper's baseline protocol.
class SyncStress
    : public ::testing::TestWithParam<std::tuple<Backend, LockDiscipline>> {
 protected:
  void SetUp() override {
    saved_ = mp::threads::lock_discipline();
    mp::threads::set_lock_discipline(std::get<1>(GetParam()));
  }
  void TearDown() override { mp::threads::set_lock_discipline(saved_); }

  std::unique_ptr<mp::Platform> make(int procs = kProcs) {
    if (std::get<0>(GetParam()) == Backend::kSim) {
      mp::SimPlatformConfig cfg;
      cfg.machine = mp::sim::sequent_s81(procs);
      cfg.heap.nursery_bytes = 512 * 1024;
      return std::make_unique<mp::SimPlatform>(cfg);
    }
    mp::NativePlatformConfig cfg;
    cfg.max_procs = procs;
    cfg.heap.nursery_bytes = 512 * 1024;
    return std::make_unique<mp::NativePlatform>(cfg);
  }

 private:
  LockDiscipline saved_ = LockDiscipline::kQueue;
};

std::string param_name(
    const ::testing::TestParamInfo<std::tuple<Backend, LockDiscipline>>& i) {
  std::string n =
      std::get<0>(i.param) == Backend::kSim ? "Sim" : "Native";
  n += std::get<1>(i.param) == LockDiscipline::kQueue ? "Queue" : "Tas";
  return n;
}

// ---------- Mutex: mutual exclusion + no lost handoff at 16:1 ----------

TEST_P(SyncStress, MutexNoLostWakeupsAtHighRatio) {
  constexpr int kIters = 50;
  auto p = make();
  long counter = 0;  // protected by m; the final count proves every
                     // contended acquire was eventually granted
  std::atomic<int> in_crit{0};
  SchedulerConfig sc;
  sc.preempt_interval_us = 2000;  // preemption inside critical sections too
  Scheduler::run(*p, std::move(sc), [&](Scheduler& s) {
    Mutex m(s);
    CountdownLatch done(s, kThreads);
    for (int t = 0; t < kThreads; t++) {
      s.fork([&] {
        for (int i = 0; i < kIters; i++) {
          m.lock();
          EXPECT_EQ(in_crit.fetch_add(1, std::memory_order_acq_rel), 0);
          counter++;
          if (i % 8 == 0) s.yield();  // park/resume while holding the lock
          in_crit.fetch_sub(1, std::memory_order_acq_rel);
          m.unlock();
        }
        done.count_down();
      });
    }
    done.await();
  });
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST_P(SyncStress, MutexTryLockNeverBreaksExclusion) {
  auto p = make();
  std::atomic<int> in_crit{0};
  std::atomic<int> acquired{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Mutex m(s);
    CountdownLatch done(s, kThreads);
    for (int t = 0; t < kThreads; t++) {
      s.fork([&, t] {
        for (int i = 0; i < 40; i++) {
          const bool via_try = (t + i) % 3 == 0;
          if (via_try && !m.try_lock()) continue;
          if (!via_try) m.lock();
          EXPECT_EQ(in_crit.fetch_add(1, std::memory_order_acq_rel), 0);
          acquired.fetch_add(1, std::memory_order_relaxed);
          in_crit.fetch_sub(1, std::memory_order_acq_rel);
          m.unlock();
        }
        done.count_down();
      });
    }
    done.await();
  });
  EXPECT_GT(acquired.load(), 0);
}

// ---------- CondVar: the signal/broadcast ordering stress ----------
//
// Pins the suspend-callback monitor-release protocol (sync.cpp): a bounded
// buffer where every producer signal races consumer parks through the
// monitor handoff.  Run under the CI TSan leg, a reordering of the
// enqueue / m.unlock() steps shows up as a lost wakeup (hang) or a data
// race on the buffer.

TEST_P(SyncStress, CondVarBoundedBufferNoLostSignals) {
  constexpr int kProducers = kThreads / 2;
  constexpr int kConsumers = kThreads / 2;
  constexpr int kPerProducer = 40;
  constexpr std::size_t kCap = 4;
  auto p = make();
  long produced_sum = 0, consumed_sum = 0;
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Mutex m(s);
    CondVar not_full(s), not_empty(s);
    std::deque<int> buf;  // protected by m
    CountdownLatch done(s, kThreads);
    for (int t = 0; t < kProducers; t++) {
      s.fork([&, t] {
        for (int i = 0; i < kPerProducer; i++) {
          const int item = t * kPerProducer + i;
          m.lock();
          while (buf.size() >= kCap) not_full.wait(m);
          buf.push_back(item);
          produced_sum += item;
          m.unlock();
          not_empty.signal();
        }
        done.count_down();
      });
    }
    for (int t = 0; t < kConsumers; t++) {
      s.fork([&] {
        for (int i = 0; i < kPerProducer; i++) {
          m.lock();
          while (buf.empty()) not_empty.wait(m);
          consumed_sum += buf.front();
          buf.pop_front();
          m.unlock();
          not_full.signal();
        }
        done.count_down();
      });
    }
    done.await();
    EXPECT_TRUE(buf.empty());
  });
  EXPECT_EQ(produced_sum, consumed_sum);
}

TEST_P(SyncStress, CondVarBroadcastWakesEveryWaiter) {
  constexpr int kRounds = 20;
  constexpr int kWaiters = kThreads - 1;
  auto p = make();
  std::atomic<int> released_total{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Mutex m(s);
    CondVar cv(s);
    int epoch = 0;  // protected by m
    CountdownLatch done(s, kWaiters);
    Barrier round(s, kThreads);  // waiters + the broadcaster
    for (int t = 0; t < kWaiters; t++) {
      s.fork([&] {
        for (int r = 0; r < kRounds; r++) {
          round.arrive_and_wait();
          m.lock();
          while (epoch <= r) cv.wait(m);
          m.unlock();
          released_total.fetch_add(1, std::memory_order_relaxed);
        }
        done.count_down();
      });
    }
    s.fork([&] {
      for (int r = 0; r < kRounds; r++) {
        round.arrive_and_wait();
        // Waiters of this round are at or past the barrier; some have
        // parked on cv, some are still between.  Broadcast must free every
        // one of them exactly once per round.
        m.lock();
        epoch = r + 1;
        m.unlock();
        cv.broadcast();
        // Stragglers that re-check after the broadcast see the epoch.
      }
    });
    done.await();
  });
  EXPECT_EQ(released_total.load(), kWaiters * kRounds);
}

// ---------- Semaphore: permits conserved at 16:1 ----------

TEST_P(SyncStress, SemaphorePermitsConserved) {
  constexpr int kPermits = 4;
  constexpr int kIters = 30;
  auto p = make();
  std::atomic<int> active{0};
  std::atomic<int> completed{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Semaphore sem(s, kPermits);
    CountdownLatch done(s, kThreads);
    for (int t = 0; t < kThreads; t++) {
      s.fork([&] {
        for (int i = 0; i < kIters; i++) {
          sem.acquire();
          const int now = active.fetch_add(1, std::memory_order_acq_rel) + 1;
          EXPECT_LE(now, kPermits);
          if (i % 4 == 0) s.yield();
          active.fetch_sub(1, std::memory_order_acq_rel);
          sem.release();
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        done.count_down();
      });
    }
    done.await();
  });
  EXPECT_EQ(completed.load(), kThreads);
  EXPECT_EQ(active.load(), 0);
}

// ---------- RWLock: exclusion + no lost readers/writers ----------

TEST_P(SyncStress, RWLockReadersSeeConsistentPairs) {
  constexpr int kWriters = 8;
  constexpr int kReaders = kThreads - kWriters;
  constexpr int kIters = 25;
  auto p = make();
  long a = 0, b = 0;  // protected by rw; writers keep a == b
  std::atomic<int> active_writers{0};
  std::atomic<int> active_readers{0};
  std::atomic<int> completed{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    RWLock rw(s);
    CountdownLatch done(s, kThreads);
    for (int t = 0; t < kWriters; t++) {
      s.fork([&] {
        for (int i = 0; i < kIters; i++) {
          rw.lock_exclusive();
          EXPECT_EQ(active_writers.fetch_add(1, std::memory_order_acq_rel), 0);
          EXPECT_EQ(active_readers.load(std::memory_order_acquire), 0);
          a++;
          if (i % 4 == 0) s.yield();
          b++;
          active_writers.fetch_sub(1, std::memory_order_acq_rel);
          rw.unlock_exclusive();
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        done.count_down();
      });
    }
    for (int t = 0; t < kReaders; t++) {
      s.fork([&] {
        for (int i = 0; i < kIters; i++) {
          rw.lock_shared();
          active_readers.fetch_add(1, std::memory_order_acq_rel);
          EXPECT_EQ(active_writers.load(std::memory_order_acquire), 0);
          EXPECT_EQ(a, b);  // never a torn write
          active_readers.fetch_sub(1, std::memory_order_acq_rel);
          rw.unlock_shared();
        }
        completed.fetch_add(1, std::memory_order_relaxed);
        done.count_down();
      });
    }
    done.await();
  });
  EXPECT_EQ(completed.load(), kThreads);
  EXPECT_EQ(a, static_cast<long>(kWriters) * kIters);
  EXPECT_EQ(a, b);
}

// ---------- Barrier: reuse across generations (PR-6 regression) ----------
//
// The seed's generation_ field was write-only: nothing verified that a
// resumed waiter was freed by its own episode's flip.  Every party now
// checks the generation it observes, and the episode counts prove no party
// ever crossed the barrier before the whole previous round arrived.

TEST_P(SyncStress, BarrierReuseAcrossGenerations) {
  constexpr int kParties = 8;
  constexpr int kRounds = 50;
  auto p = make();
  std::atomic<int> arrived[kRounds];
  for (auto& r : arrived) r.store(0);
  std::atomic<int> violations{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    Barrier bar(s, kParties);
    CountdownLatch done(s, kParties);
    for (int t = 0; t < kParties; t++) {
      s.fork([&] {
        for (int r = 0; r < kRounds; r++) {
          arrived[r].fetch_add(1, std::memory_order_acq_rel);
          bar.arrive_and_wait();
          // The whole round must have arrived before anyone passes.
          if (arrived[r].load(std::memory_order_acquire) != kParties) {
            violations.fetch_add(1, std::memory_order_relaxed);
          }
        }
        done.count_down();
      });
    }
    done.await();
    EXPECT_EQ(bar.generation(), kRounds);
  });
  EXPECT_EQ(violations.load(), 0);
}

// ---------- CountdownLatch: every waiter freed, none early ----------

TEST_P(SyncStress, LatchFreesAllWaitersOnlyAtZero) {
  constexpr int kWaiters = kThreads / 2;
  constexpr int kCounters = kThreads / 2;
  constexpr long kCount = 256;  // divisible by kCounters
  auto p = make();
  std::atomic<long> counted{0};
  std::atomic<int> released{0};
  Scheduler::run(*p, {}, [&](Scheduler& s) {
    CountdownLatch latch(s, kCount);
    CountdownLatch done(s, kThreads);
    for (int t = 0; t < kWaiters; t++) {
      s.fork([&] {
        latch.await();
        EXPECT_EQ(counted.load(std::memory_order_acquire), kCount);
        released.fetch_add(1, std::memory_order_relaxed);
        done.count_down();
      });
    }
    for (int t = 0; t < kCounters; t++) {
      s.fork([&] {
        for (long i = 0; i < kCount / kCounters; i++) {
          counted.fetch_add(1, std::memory_order_acq_rel);
          latch.count_down();
          if (i % 3 == 0) s.yield();
        }
        done.count_down();
      });
    }
    done.await();
    EXPECT_EQ(latch.remaining(), 0);
  });
  EXPECT_EQ(released.load(), kWaiters);
}

INSTANTIATE_TEST_SUITE_P(
    BackendsAndDisciplines, SyncStress,
    ::testing::Combine(::testing::Values(Backend::kSim, Backend::kNative),
                       ::testing::Values(LockDiscipline::kQueue,
                                         LockDiscipline::kTas)),
    param_name);

// ---------- queue-discipline sim runs stay bit-reproducible ----------

double contended_sim_total_us() {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(kProcs);
  cfg.heap.nursery_bytes = 512 * 1024;
  mp::SimPlatform platform(cfg);
  long counter = 0;
  Scheduler::run(platform, {}, [&](Scheduler& s) {
    Mutex m(s);
    CountdownLatch done(s, kThreads);
    for (int t = 0; t < kThreads; t++) {
      s.fork([&] {
        for (int i = 0; i < 20; i++) {
          m.lock();
          counter++;
          if (i % 8 == 0) s.yield();
          m.unlock();
        }
        done.count_down();
      });
    }
    done.await();
  });
  EXPECT_EQ(counter, kThreads * 20L);
  return platform.report().total_us;
}

TEST(SyncSimDeterminism, QueueLockTracesBitReproducible) {
  const LockDiscipline saved = mp::threads::lock_discipline();
  mp::threads::set_lock_discipline(LockDiscipline::kQueue);
  const double a = contended_sim_total_us();
  const double b = contended_sim_total_us();
  mp::threads::set_lock_discipline(saved);
  EXPECT_EQ(a, b);  // bitwise: same config, same virtual-time trace
  EXPECT_GT(a, 0);
}

// ---------- the invariant checks actually fire ----------

class SyncDeathTest : public ::testing::Test {
 protected:
  static void run_sim(const std::function<void(Scheduler&)>& fn) {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(1);
    mp::SimPlatform platform(cfg);
    Scheduler::run(platform, {}, fn);
  }
};

TEST_F(SyncDeathTest, UnlockSharedWithoutHoldPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  for (LockDiscipline d : {LockDiscipline::kQueue, LockDiscipline::kTas}) {
    EXPECT_DEATH(
        {
          mp::threads::set_lock_discipline(d);
          run_sim([](Scheduler& s) {
            RWLock rw(s);
            rw.unlock_shared();
          });
        },
        "unlock_shared without a shared hold");
  }
}

TEST_F(SyncDeathTest, UnlockExclusiveWithoutHoldPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  for (LockDiscipline d : {LockDiscipline::kQueue, LockDiscipline::kTas}) {
    EXPECT_DEATH(
        {
          mp::threads::set_lock_discipline(d);
          run_sim([](Scheduler& s) {
            RWLock rw(s);
            rw.unlock_exclusive();
          });
        },
        "unlock_exclusive without the exclusive hold");
  }
}

TEST_F(SyncDeathTest, MutexUnlockUnheldPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  for (LockDiscipline d : {LockDiscipline::kQueue, LockDiscipline::kTas}) {
    EXPECT_DEATH(
        {
          mp::threads::set_lock_discipline(d);
          run_sim([](Scheduler& s) {
            Mutex m(s);
            m.unlock();
          });
        },
        "unheld");
  }
}

TEST_F(SyncDeathTest, CondVarWaitWithoutMonitorPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mp::threads::set_lock_discipline(LockDiscipline::kQueue);
        run_sim([](Scheduler& s) {
          Mutex m(s);
          CondVar cv(s);
          cv.wait(m);  // monitor not held
        });
      },
      "without the monitor held");
}

}  // namespace
