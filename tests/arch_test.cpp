// Unit tests for the architecture layer: context switching, test-and-set,
// deterministic RNG, cache padding.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <set>
#include <thread>
#include <vector>

#include "arch/cacheline.h"
#include "arch/ctx.h"
#include "arch/rng.h"
#include "arch/tas.h"

namespace {

using mp::arch::Context;
using mp::arch::ctx_make;
using mp::arch::ctx_swap;
using mp::arch::Rng;
using mp::arch::TasWord;

// ---------- Context switching ----------

struct PingPong {
  Context main_ctx;
  Context side_ctx;
  std::vector<int> trace;
};

void side_fn(void* arg) {
  auto* pp = static_cast<PingPong*>(arg);
  pp->trace.push_back(1);
  ctx_swap(pp->side_ctx, pp->main_ctx);
  pp->trace.push_back(3);
  ctx_swap(pp->side_ctx, pp->main_ctx);
  std::abort();  // never reached
}

TEST(Ctx, SwapRoundTrip) {
  constexpr std::size_t kStack = 64 * 1024;
  std::vector<std::byte> stack(kStack);
  PingPong pp;
  ctx_make(pp.side_ctx, stack.data(), kStack, side_fn, &pp);
  pp.trace.push_back(0);
  ctx_swap(pp.main_ctx, pp.side_ctx);
  pp.trace.push_back(2);
  ctx_swap(pp.main_ctx, pp.side_ctx);
  pp.trace.push_back(4);
  EXPECT_EQ(pp.trace, (std::vector<int>{0, 1, 2, 3, 4}));
}

struct DeepCall {
  Context main_ctx;
  Context side_ctx;
  long result = 0;
};

long collatz_steps(long n) {
  if (n == 1) return 0;
  return 1 + collatz_steps(n % 2 == 0 ? n / 2 : 3 * n + 1);
}

void deep_fn(void* arg) {
  auto* d = static_cast<DeepCall*>(arg);
  d->result = collatz_steps(97);  // real nested calls on the new stack
  ctx_swap(d->side_ctx, d->main_ctx);
  std::abort();
}

TEST(Ctx, NestedCallsOnFabricatedStack) {
  constexpr std::size_t kStack = 256 * 1024;
  std::vector<std::byte> stack(kStack);
  DeepCall d;
  ctx_make(d.side_ctx, stack.data(), kStack, deep_fn, &d);
  ctx_swap(d.main_ctx, d.side_ctx);
  EXPECT_EQ(d.result, 118);
}

struct FloatState {
  Context main_ctx;
  Context side_ctx;
  double side_sum = 0.0;
};

void float_fn(void* arg) {
  auto* f = static_cast<FloatState*>(arg);
  double acc = 0.25;
  for (int i = 0; i < 10; i++) {
    acc = acc * 1.5 + 0.125;
    ctx_swap(f->side_ctx, f->main_ctx);
  }
  f->side_sum = acc;
  ctx_swap(f->side_ctx, f->main_ctx);
  std::abort();
}

TEST(Ctx, FloatingPointSurvivesSwitches) {
  constexpr std::size_t kStack = 64 * 1024;
  std::vector<std::byte> stack(kStack);
  FloatState f;
  ctx_make(f.side_ctx, stack.data(), kStack, float_fn, &f);
  double acc = 0.25;
  double main_acc = 1.0;
  for (int i = 0; i < 10; i++) {
    acc = acc * 1.5 + 0.125;
    main_acc *= 3.14159;  // keep FP registers busy on the main side too
    ctx_swap(f.main_ctx, f.side_ctx);
  }
  ctx_swap(f.main_ctx, f.side_ctx);
  EXPECT_DOUBLE_EQ(f.side_sum, acc);
  EXPECT_GT(main_acc, 1.0);
}

TEST(Ctx, ExceptionsUnwindOnFabricatedStack) {
  struct Thrower {
    Context main_ctx;
    Context side_ctx;
    bool caught = false;
    bool dtor_ran = false;
  };
  static auto fn = +[](void* arg) {
    auto* t = static_cast<Thrower*>(arg);
    struct Raii {
      bool* flag;
      ~Raii() { *flag = true; }
    };
    try {
      Raii r{&t->dtor_ran};
      throw std::runtime_error("boom");
    } catch (const std::runtime_error&) {
      t->caught = true;
    }
    ctx_swap(t->side_ctx, t->main_ctx);
    std::abort();
  };
  constexpr std::size_t kStack = 128 * 1024;
  std::vector<std::byte> stack(kStack);
  Thrower t;
  ctx_make(t.side_ctx, stack.data(), kStack, fn, &t);
  ctx_swap(t.main_ctx, t.side_ctx);
  EXPECT_TRUE(t.caught);
  EXPECT_TRUE(t.dtor_ran);
}

// ---------- TasWord ----------

TEST(Tas, InitiallyClear) {
  TasWord w;
  EXPECT_FALSE(w.is_set());
  EXPECT_TRUE(w.test_and_set());
  EXPECT_TRUE(w.is_set());
}

TEST(Tas, SecondSetFails) {
  TasWord w;
  ASSERT_TRUE(w.test_and_set());
  EXPECT_FALSE(w.test_and_set());
  w.clear();
  EXPECT_TRUE(w.test_and_set());
}

TEST(Tas, MutualExclusionUnderContention) {
  TasWord w;
  std::atomic<int> inside{0};
  std::atomic<bool> violation{false};
  std::atomic<long> acquisitions{0};
  constexpr int kThreads = 4;
  constexpr long kIters = 20000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int i = 0; i < kThreads; i++) {
    ts.emplace_back([&] {
      for (long n = 0; n < kIters; n++) {
        while (!w.test_and_set()) mp::arch::cpu_relax();
        if (inside.fetch_add(1) != 0) violation = true;
        inside.fetch_sub(1);
        w.clear();
        acquisitions.fetch_add(1);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_FALSE(violation);
  EXPECT_EQ(acquisitions.load(), kThreads * kIters);
}

TEST(Tas, PaddedToCacheLine) {
  EXPECT_GE(sizeof(TasWord), mp::arch::kCacheLine);
  EXPECT_EQ(alignof(TasWord), mp::arch::kCacheLine);
}

// ---------- RNG ----------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; i++) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; i++) {
    if (a.next() == b.next()) same++;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; i++) {
      EXPECT_LT(r.below(bound), bound);
    }
  }
}

TEST(Rng, BelowCoversAllResidues) {
  Rng r(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; i++) seen.insert(r.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  Rng r(11);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; i++) {
    double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.05);
  EXPECT_GT(hi, 0.95);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(5);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; i++) first.push_back(a.next());
  a.reseed(5);
  for (int i = 0; i < 10; i++) EXPECT_EQ(a.next(), first[static_cast<size_t>(i)]);
}

// ---------- CachePadded ----------

TEST(CachePadded, SizeAndAlignment) {
  mp::arch::CachePadded<int> p;
  EXPECT_EQ(sizeof(p) % mp::arch::kCacheLine, 0u);
  EXPECT_EQ(alignof(decltype(p)), mp::arch::kCacheLine);
  *p = 17;
  EXPECT_EQ(p.value, 17);
}

TEST(CachePadded, ArrayElementsDoNotShareLines) {
  mp::arch::CachePadded<int> arr[2];
  auto a = reinterpret_cast<std::uintptr_t>(&arr[0].value);
  auto b = reinterpret_cast<std::uintptr_t>(&arr[1].value);
  EXPECT_GE(b - a, mp::arch::kCacheLine);
}

}  // namespace
