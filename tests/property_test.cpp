// Cross-configuration property tests: every workload must verify exactly
// under any machine size, queue discipline, preemption quantum, heap
// geometry, scheduling granularity and backend — and the simulator's
// accounting must always balance.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mp/native_platform.h"
#include "mp/uni_platform.h"
#include "threads/scheduler.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace {

using mp::threads::Scheduler;
using mp::workloads::make_workload;
using mp::workloads::run_sim;
using mp::workloads::SimRunSpec;
using mp::workloads::Workload;

std::unique_ptr<Workload> small_workload(const std::string& name, int procs) {
  using namespace mp::workloads;
  if (name == "allpairs") return make_allpairs(18);
  if (name == "mst") return make_mst(36);
  if (name == "abisort") return make_abisort(7);
  if (name == "simple") return make_simple(22, 1);
  if (name == "mm") return make_mm(20);
  if (name == "seq") return make_seq(procs, 1500);
  return nullptr;
}

// ---------- workload × machine-size sweep ----------

struct SweepCase {
  std::string workload;
  int procs;
};

class WorkloadSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(WorkloadSweep, VerifiesAndBalancesAccounting) {
  const auto& [name, procs] = GetParam();
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(procs);
  cfg.heap.nursery_bytes = 256 * 1024;
  mp::SimPlatform platform(cfg);
  auto w = small_workload(name, procs);
  ASSERT_NE(w, nullptr);
  mp::threads::SchedulerConfig sc;
  sc.preempt_interval_us = 10000;
  Scheduler::run(platform, std::move(sc),
                 [&](Scheduler& s) { w->run(s, procs); });
  EXPECT_TRUE(w->verify()) << name << " wrong at p=" << procs;

  // Accounting property: each proc's time decomposes into busy + idle +
  // gc-wait, summing (approximately: rounding at run boundaries) to
  // procs x elapsed.
  const auto r = platform.report();
  const double accounted = r.busy_us + r.idle_us + r.gc_wait_us;
  const double wall = r.total_us * procs;
  EXPECT_GT(r.total_us, 0.0);
  EXPECT_LE(accounted, wall * 1.05);
  EXPECT_GE(accounted, wall * 0.90)
      << "unaccounted processor time at p=" << procs;
  // Spin happens while executing or while idle-polling the run queues
  // (where the report reclassifies the time as idle); GC time is a subset
  // of some proc's execution.
  EXPECT_LE(r.spin_us, r.busy_us + r.idle_us);
  EXPECT_LE(r.gc_us, r.busy_us);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  for (const char* w :
       {"allpairs", "mst", "abisort", "simple", "mm", "seq"}) {
    for (const int p : {1, 2, 3, 5, 8, 16}) {
      cases.push_back({w, p});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Grid, WorkloadSweep,
                         ::testing::ValuesIn(sweep_cases()),
                         [](const auto& info) {
                           return info.param.workload + "p" +
                                  std::to_string(info.param.procs);
                         });

// ---------- checksum equality across backends ----------

class BackendChecksum : public ::testing::TestWithParam<std::string> {};

TEST_P(BackendChecksum, SameResultOnSimNativeAndUni) {
  const std::string name = GetParam();

  std::uint64_t sim_sum = 0, native_sum = 0, uni_sum = 0;
  {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(4);
    mp::SimPlatform p(cfg);
    auto w = small_workload(name, 4);
    Scheduler::run(p, {}, [&](Scheduler& s) { w->run(s, 4); });
    ASSERT_TRUE(w->verify());
    sim_sum = w->checksum();
  }
  {
    mp::NativePlatformConfig cfg;
    cfg.max_procs = 3;
    mp::NativePlatform p(cfg);
    auto w = small_workload(name, 3);
    Scheduler::run(p, {}, [&](Scheduler& s) { w->run(s, 3); });
    ASSERT_TRUE(w->verify());
    native_sum = w->checksum();
  }
  {
    mp::UniPlatform p;
    auto w = small_workload(name, 1);
    Scheduler::run(p, {}, [&](Scheduler& s) { w->run(s, 1); });
    ASSERT_TRUE(w->verify());
    uni_sum = w->checksum();
  }
  // The computation is schedule-independent: any backend, any machine
  // size, same answer.  (seq's checksum scales with the copy count, so it
  // is excluded from the cross-size comparison.)
  if (name != "seq") {
    EXPECT_EQ(sim_sum, native_sum);
    EXPECT_EQ(sim_sum, uni_sum);
  }
}

INSTANTIATE_TEST_SUITE_P(All, BackendChecksum,
                         ::testing::Values("allpairs", "mst", "abisort",
                                           "simple", "mm"),
                         [](const auto& info) { return info.param; });

// ---------- preemption quantum sweep ----------

class PreemptSweep : public ::testing::TestWithParam<double> {};

TEST_P(PreemptSweep, AbisortVerifiesUnderAnyQuantum) {
  SimRunSpec spec;
  spec.workload = "abisort";
  spec.machine = mp::sim::sequent_s81(6);
  spec.preempt_interval_us = GetParam();
  const auto r = run_sim(spec);
  EXPECT_TRUE(r.verified) << "quantum " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Quanta, PreemptSweep,
                         ::testing::Values(0.0, 500.0, 2000.0, 20000.0,
                                           200000.0));

// ---------- heap geometry sweep ----------

struct HeapCase {
  std::size_t nursery;
  std::size_t chunks_per_proc;
};

class HeapGeometry : public ::testing::TestWithParam<HeapCase> {};

TEST_P(HeapGeometry, AllpairsVerifiesAndHeapStaysConsistent) {
  const auto& [nursery, chunks] = GetParam();
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(4);
  cfg.heap.nursery_bytes = nursery;
  cfg.heap.chunks_per_proc = chunks;
  mp::SimPlatform platform(cfg);
  auto w = small_workload("allpairs", 4);
  Scheduler::run(platform, {}, [&](Scheduler& s) { w->run(s, 4); });
  EXPECT_TRUE(w->verify());
  std::string err;
  EXPECT_TRUE(platform.heap().verify(&err)) << err;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, HeapGeometry,
    ::testing::Values(HeapCase{64u << 10, 1}, HeapCase{64u << 10, 8},
                      HeapCase{256u << 10, 2}, HeapCase{1u << 20, 4},
                      HeapCase{4u << 20, 16}),
    [](const auto& info) {
      return "n" + std::to_string(info.param.nursery / 1024) + "k_c" +
             std::to_string(info.param.chunks_per_proc);
    });

// ---------- scheduling granularity sweep ----------

class GranularitySweep : public ::testing::TestWithParam<double> {};

TEST_P(GranularitySweep, ResultsExactUnderCoarserInterleaving) {
  SimRunSpec spec;
  spec.workload = "mm";
  spec.machine = mp::sim::sequent_s81(8);
  spec.machine.granularity_us = GetParam();
  const auto r = run_sim(spec);
  EXPECT_TRUE(r.verified);
  EXPECT_GT(r.report.total_us, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Grains, GranularitySweep,
                         ::testing::Values(0.0, 1.0, 10.0, 100.0));

// ---------- no-speedup-catastrophe property ----------

TEST(SpeedupSanity, AddingProcsNeverCollapsesThroughput) {
  for (const char* w : {"mm", "abisort", "simple", "mst", "allpairs"}) {
    SimRunSpec spec;
    spec.workload = w;
    const auto sweep = mp::workloads::sweep_procs(spec, {1, 2, 8, 16});
    const double t1 = sweep[0].report.total_us;
    for (std::size_t i = 1; i < sweep.size(); i++) {
      EXPECT_TRUE(sweep[i].verified);
      EXPECT_LT(sweep[i].report.total_us, t1 * 1.15)
          << w << " collapsed at p=" << sweep[i].procs;
    }
  }
}

}  // namespace
