// Tests for the selective-communication facility (paper section 4.2) and
// the CML-style event combinators, on both backends.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <set>
#include <vector>

#include "cml/cml.h"
#include "cml/mailbox.h"
#include "mp/native_platform.h"
#include "mp/sim_platform.h"

namespace {

using mp::cont::Unit;
using mp::cml::Channel;
using mp::cml::Event;
using mp::cml::select_receive;
using mp::gc::Value;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;

enum class Backend { kSim, kNative };

std::string backend_name(const ::testing::TestParamInfo<Backend>& info) {
  return info.param == Backend::kSim ? "Sim" : "Native";
}

class CmlTest : public ::testing::TestWithParam<Backend> {
 protected:
  std::unique_ptr<mp::Platform> make(int procs,
                                     std::size_t nursery = 512 * 1024) {
    if (GetParam() == Backend::kSim) {
      mp::SimPlatformConfig cfg;
      cfg.machine = mp::sim::sequent_s81(procs);
      cfg.heap.nursery_bytes = nursery;
      return std::make_unique<mp::SimPlatform>(cfg);
    }
    mp::NativePlatformConfig cfg;
    cfg.max_procs = procs;
    cfg.heap.nursery_bytes = nursery;
    return std::make_unique<mp::NativePlatform>(cfg);
  }

  void run(mp::Platform& p, const std::function<void(Scheduler&)>& fn) {
    Scheduler::run(p, {}, fn);
  }
};

TEST_P(CmlTest, SendRecvTransfersValuesInOrder) {
  auto p = make(2);
  std::vector<int> got;
  run(*p, [&](Scheduler& s) {
    Channel<int> ch(s);
    s.fork([&] {
      for (int i = 0; i < 20; i++) ch.send(i * 3);
    });
    for (int i = 0; i < 20; i++) got.push_back(ch.recv());
  });
  ASSERT_EQ(got.size(), 20u);
  for (int i = 0; i < 20; i++) EXPECT_EQ(got[static_cast<size_t>(i)], i * 3);
}

TEST_P(CmlTest, SendBlocksUntilAReceiverArrives) {
  auto p = make(2);
  std::atomic<bool> sent{false};
  bool was_blocked = false;
  run(*p, [&](Scheduler& s) {
    Channel<int> ch(s);
    s.fork([&] {
      ch.send(7);  // no receiver yet: must block
      sent.store(true);
    });
    for (int i = 0; i < 50; i++) s.yield();  // give the sender every chance
    was_blocked = !sent.load();
    EXPECT_EQ(ch.recv(), 7);
  });
  EXPECT_TRUE(was_blocked) << "send completed without a receiver";
  EXPECT_TRUE(sent.load());
}

TEST_P(CmlTest, RecvBlocksUntilASenderArrives) {
  auto p = make(2);
  std::atomic<bool> received{false};
  bool was_blocked = false;
  run(*p, [&](Scheduler& s) {
    Channel<int> ch(s);
    s.fork([&] {
      (void)ch.recv();
      received.store(true);
    });
    for (int i = 0; i < 50; i++) s.yield();
    was_blocked = !received.load();
    ch.send(1);
  });
  EXPECT_TRUE(was_blocked);
  EXPECT_TRUE(received.load());
}

TEST_P(CmlTest, ManyProducersOneConsumer) {
  constexpr int kProducers = 8;
  constexpr int kEach = 25;
  auto p = make(4);
  long sum = 0;
  run(*p, [&](Scheduler& s) {
    Channel<int> ch(s);
    for (int t = 0; t < kProducers; t++) {
      s.fork([&, t] {
        for (int i = 0; i < kEach; i++) ch.send(t * 1000 + i);
      });
    }
    for (int n = 0; n < kProducers * kEach; n++) sum += ch.recv();
  });
  long expect = 0;
  for (int t = 0; t < kProducers; t++) {
    for (int i = 0; i < kEach; i++) expect += t * 1000 + i;
  }
  EXPECT_EQ(sum, expect);
}

TEST_P(CmlTest, UnitChannelSynchronizesTwoThreads) {
  auto p = make(2);
  std::vector<int> trace;
  run(*p, [&](Scheduler& s) {
    Channel<Unit> go(s);
    Channel<Unit> done(s);
    s.fork([&] {
      go.recv();
      trace.push_back(2);
      done.send(Unit{});
    });
    trace.push_back(1);
    go.send(Unit{});
    done.recv();
    trace.push_back(3);
  });
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST_P(CmlTest, SelectPicksTheReadyChannel) {
  auto p = make(2);
  int got = 0;
  run(*p, [&](Scheduler& s) {
    Channel<int> a(s), b(s), c(s);
    s.fork([&] { b.send(55); });
    // Let the sender park its offer on b first.
    for (int i = 0; i < 20; i++) s.yield();
    got = select_receive<int>({&a, &b, &c});
  });
  EXPECT_EQ(got, 55);
}

TEST_P(CmlTest, SelectBlocksAcrossManyChannelsUntilAnySenderArrives) {
  auto p = make(2);
  int got = 0;
  run(*p, [&](Scheduler& s) {
    Channel<int> a(s), b(s), c(s);
    s.fork([&] {
      for (int i = 0; i < 30; i++) s.yield();
      c.send(99);  // the selector is already parked on all three channels
    });
    got = select_receive<int>({&a, &b, &c});
  });
  EXPECT_EQ(got, 99);
}

TEST_P(CmlTest, SelectDeliversEachValueExactlyOnce) {
  constexpr int kValues = 60;
  auto p = make(4);
  std::multiset<int> got;
  run(*p, [&](Scheduler& s) {
    Channel<int> chans[3] = {Channel<int>(s), Channel<int>(s), Channel<int>(s)};
    mp::threads::Mutex m(s);
    CountdownLatch latch(s, 3);
    for (int t = 0; t < 3; t++) {
      s.fork([&, t] {
        for (int i = 0; i < kValues / 3; i++) {
          chans[t].send(t * 100 + i);
        }
        latch.count_down();
      });
    }
    for (int n = 0; n < kValues; n++) {
      const int v = select_receive<int>({&chans[0], &chans[1], &chans[2]});
      m.lock();
      got.insert(v);
      m.unlock();
    }
    latch.await();
  });
  EXPECT_EQ(got.size(), static_cast<std::size_t>(kValues));
  for (int t = 0; t < 3; t++) {
    for (int i = 0; i < kValues / 3; i++) {
      EXPECT_EQ(got.count(t * 100 + i), 1u) << "value " << t * 100 + i;
    }
  }
}

TEST_P(CmlTest, ChooseWithAlwaysNeverBlocks) {
  auto p = make(1);
  int got = 0;
  run(*p, [&](Scheduler& s) {
    Channel<int> never(s);
    got = Event<int>::choose(
              {never.recv_event(), Event<int>::always(42)})
              .sync(s);
  });
  EXPECT_EQ(got, 42);
}

TEST_P(CmlTest, WrapTransformsTheResult) {
  auto p = make(2);
  std::string got;
  run(*p, [&](Scheduler& s) {
    Channel<int> ch(s);
    s.fork([&] { ch.send(5); });
    got = ch.recv_event()
              .wrap<std::string>([](int v) { return std::to_string(v * 2); })
              .sync(s);
  });
  EXPECT_EQ(got, "10");
}

TEST_P(CmlTest, AbandonedOfferDoesNotFireLater) {
  auto p = make(2);
  int first = 0, second = 0;
  run(*p, [&](Scheduler& s) {
    Channel<int> a(s), b(s);
    s.fork([&] { b.send(1); });
    for (int i = 0; i < 20; i++) s.yield();
    // The choose parks an offer on `a`, then commits on `b`; the offer on
    // `a` is dead.
    first = Event<int>::choose({a.recv_event(), b.recv_event()}).sync(s);
    // A later rendezvous on `a` must pair the new sender with the new
    // receiver, not with the dead offer.
    s.fork([&] { a.send(2); });
    second = a.recv();
  });
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 2);
}

TEST_P(CmlTest, SelectiveSendCommitsExactlyOne) {
  auto p = make(2);
  int received = 0;
  bool sent_unit = false;
  run(*p, [&](Scheduler& s) {
    Channel<int> a(s), b(s);
    s.fork([&] {
      // Receiver ready on b only.
      received = b.recv();
    });
    for (int i = 0; i < 20; i++) s.yield();
    // Offer sends on both; only b has a receiver.
    Event<Unit> e = Event<Unit>::choose({a.send_event(10), b.send_event(20)});
    e.sync(s);
    sent_unit = true;
    // a must still be empty: a fresh receive pairs with a fresh sender.
    s.fork([&] { a.send(30); });
    EXPECT_EQ(a.recv(), 30);
  });
  EXPECT_TRUE(sent_unit);
  EXPECT_EQ(received, 20);
}

TEST_P(CmlTest, GcValuesFlowThroughChannels) {
  auto p = make(3, /*nursery=*/64 * 1024);
  long checksum = 0;
  run(*p, [&](Scheduler& s) {
    auto& h = s.platform().heap();
    Channel<Value> ch(s);
    s.fork([&] {
      for (int i = 0; i < 200; i++) {
        mp::gc::Roots<1> r;
        r[0] = h.alloc_record({Value::from_int(i), Value::from_int(i * 7)});
        ch.send(r[0]);
        // Churn the heap so collections run while values sit in channel
        // queues and continuation slots.
        for (int n = 0; n < 50; n++) h.alloc_record({Value::from_int(n)});
      }
    });
    for (int i = 0; i < 200; i++) {
      mp::gc::Roots<1> r;
      r[0] = ch.recv();
      for (int n = 0; n < 30; n++) h.alloc_record({Value::from_int(n)});
      checksum += r[0].field(1).as_int() - 7 * r[0].field(0).as_int();
    }
    EXPECT_GT(h.stats().minor_gcs, 0u);
  });
  EXPECT_EQ(checksum, 0) << "values corrupted in transit";
}

TEST_P(CmlTest, PingPongManyRounds) {
  auto p = make(2);
  long rounds = 0;
  run(*p, [&](Scheduler& s) {
    Channel<int> ping(s), pong(s);
    s.fork([&] {
      for (;;) {
        const int v = ping.recv();
        if (v < 0) break;
        pong.send(v + 1);
      }
    });
    for (int i = 0; i < 500; i++) {
      ping.send(i);
      if (pong.recv() == i + 1) rounds++;
    }
    ping.send(-1);
  });
  EXPECT_EQ(rounds, 500);
}

TEST_P(CmlTest, BothSidesSelecting) {
  // Two threads each offering {send on own, recv on other}: exactly one
  // pairing must commit per round, with no lost or duplicated values.
  auto p = make(2);
  std::atomic<int> transfers{0};
  run(*p, [&](Scheduler& s) {
    Channel<int> ab(s), ba(s);
    CountdownLatch latch(s, 2);
    s.fork([&] {
      for (int i = 0; i < 40; i++) {
        Event<int>::choose(
            {ab.send_event(i).wrap<int>([](Unit) { return -1; }),
             ba.recv_event()})
            .sync(s);
        transfers.fetch_add(1);
      }
      latch.count_down();
    });
    s.fork([&] {
      for (int i = 0; i < 40; i++) {
        Event<int>::choose(
            {ba.send_event(i).wrap<int>([](Unit) { return -1; }),
             ab.recv_event()})
            .sync(s);
        transfers.fetch_add(1);
      }
      latch.count_down();
    });
    latch.await();
  });
  EXPECT_EQ(transfers.load(), 80);
}

// ---------- Mailbox: the asynchronous buffered channel ----------

TEST_P(CmlTest, MailboxSendNeverBlocksAndRecvDrainsInOrder) {
  auto p = make(1);
  run(*p, [&](Scheduler& s) {
    mp::cml::Mailbox<std::uint64_t> mb(s);
    // With no receiver anywhere, every send must return immediately — on
    // one proc, a rendezvous send here would deadlock the whole run.
    for (std::uint64_t i = 0; i < 100; i++) mb.send(i);
    EXPECT_EQ(mb.size(), 100u);
    for (std::uint64_t i = 0; i < 100; i++) EXPECT_EQ(mb.recv(), i);
    std::uint64_t v = 0;
    EXPECT_FALSE(mb.try_recv(&v));
    mb.send(7);
    ASSERT_TRUE(mb.try_recv(&v));
    EXPECT_EQ(v, 7u);
  });
}

TEST_P(CmlTest, MailboxWakesAParkedReceiver) {
  auto p = make(2);
  std::atomic<long> sum{0};
  run(*p, [&](Scheduler& s) {
    mp::cml::Mailbox<std::uint64_t> mb(s);
    CountdownLatch done(s, 1);
    s.fork([&] {
      // Parks until the producers below post.
      for (int i = 0; i < 60; i++) sum.fetch_add(static_cast<long>(mb.recv()));
      done.count_down();
    });
    for (int t = 0; t < 3; t++) {
      s.fork([&, t] {
        for (int i = 0; i < 20; i++) {
          mb.send(static_cast<std::uint64_t>(t * 20 + i));
        }
      });
    }
    done.await();
  });
  EXPECT_EQ(sum.load(), 59L * 60 / 2);
}

INSTANTIATE_TEST_SUITE_P(Backends, CmlTest,
                         ::testing::Values(Backend::kSim, Backend::kNative),
                         backend_name);

TEST(CmlSim, DeterministicCommunication) {
  auto run_once = [] {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(4);
    mp::SimPlatform p(cfg);
    double total = 0;
    Scheduler::run(p, {}, [&](Scheduler& s) {
      Channel<int> ch(s);
      for (int t = 0; t < 3; t++) {
        s.fork([&, t] {
          for (int i = 0; i < 50; i++) ch.send(t * 50 + i);
        });
      }
      long sum = 0;
      for (int i = 0; i < 150; i++) sum += ch.recv();
      EXPECT_EQ(sum, 150L * 149 / 2);
    });
    total = p.report().total_us;
    return total;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
