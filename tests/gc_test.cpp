// Unit tests for the ML-style heap: tagged values, per-proc allocation,
// rooting discipline, minor/major copying collection, store-list barrier,
// and continuation-slot tracing.

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "cont/cont.h"
#include "gc/heap.h"
#include "gc/roots.h"
#include "gc/value.h"

namespace {

using mp::gc::GlobalRoot;
using mp::gc::Heap;
using mp::gc::HeapConfig;
using mp::gc::ObjKind;
using mp::gc::Roots;
using mp::gc::Value;

// Single-proc harness: a ManualProc (as in cont_test) plus trivial collector
// hooks, so heap behaviour can be tested in isolation from the platform.
// One-proc world: nothing to stop, and the collecting proc is the
// collection's single (degenerate) parallel worker, so the worker fn passed
// to stop_world is dropped.
class TestHooks : public mp::gc::Rendezvous, public mp::gc::Accounting {
 public:
  // ---- gc::Rendezvous ----
  void stop_world(mp::gc::WorkerFn) override { stops++; }
  void resume_world() override {}
  void rendezvous_and_work(const mp::gc::WorkerFn&) override {}
  int cur_proc() override { return 0; }
  int nproc() override { return 1; }
  mp::cont::ExecContext* proc_exec(int) override { return exec; }

  // ---- gc::Accounting ----
  void charge_gc(std::uint64_t words) override { gc_words += words; }
  void charge_alloc(std::uint64_t words) override { alloc_words += words; }
  void charge_card_scan(std::uint64_t, std::uint64_t) override {}
  void charge_los_alloc(std::uint64_t) override {}
  void charge_los_sweep(std::uint64_t) override {}

  mp::cont::ExecContext* exec = nullptr;
  std::uint64_t gc_words = 0;
  std::uint64_t alloc_words = 0;
  int stops = 0;
};

class GcTest : public ::testing::Test {
 protected:
  GcTest() {
    exec_.idle_ctx = &idle_ctx_;
    mp::cont::set_current_exec(&exec_);
    hooks_.exec = &exec_;
  }
  ~GcTest() override { mp::cont::set_current_exec(nullptr); }

  Heap& make_heap(std::size_t nursery_bytes = 64 * 1024,
                  std::size_t old_bytes = 1 << 20) {
    const HeapConfig cfg = HeapConfig{}
                               .with_nursery_bytes(nursery_bytes)
                               .with_old_bytes(old_bytes);
    heap_ = std::make_unique<Heap>(cfg, hooks_, hooks_);
    return *heap_;
  }

  Heap& make_heap_cfg(const HeapConfig& cfg) {
    heap_ = std::make_unique<Heap>(cfg, hooks_, hooks_);
    return *heap_;
  }

  // Run `f` as a proc client (required for allocation).
  void on_proc(std::function<void()> f) {
    mp::cont::run_from_idle(mp::cont::make_entry(std::move(f)), exec_);
  }

  mp::cont::ExecContext exec_;
  mp::arch::Context idle_ctx_;
  TestHooks hooks_;
  std::unique_ptr<Heap> heap_;
};

// ---------- tagged values ----------

TEST_F(GcTest, IntRoundTrip) {
  for (std::int64_t i : {0L, 1L, -1L, 42L, -1000000L, (1L << 62) - 1, -(1L << 62)}) {
    Value v = Value::from_int(i);
    EXPECT_TRUE(v.is_int());
    EXPECT_FALSE(v.is_ptr());
    EXPECT_FALSE(v.is_nil());
    EXPECT_EQ(v.as_int(), i);
  }
}

TEST_F(GcTest, NilIsDistinctFromZero) {
  EXPECT_TRUE(Value::nil().is_nil());
  EXPECT_FALSE(Value::from_int(0).is_nil());
  EXPECT_FALSE(Value::nil() == Value::from_int(0));
}

TEST_F(GcTest, BoolRoundTrip) {
  EXPECT_TRUE(Value::from_bool(true).as_bool());
  EXPECT_FALSE(Value::from_bool(false).as_bool());
}

// ---------- allocation ----------

TEST_F(GcTest, RecordFields) {
  Heap& h = make_heap();
  on_proc([&] {
    Value r = h.alloc_record({Value::from_int(1), Value::from_int(2),
                              Value::from_int(3)});
    ASSERT_TRUE(r.is_ptr());
    EXPECT_EQ(r.kind(), ObjKind::kRecord);
    EXPECT_EQ(r.length(), 3u);
    EXPECT_EQ(r.field(0).as_int(), 1);
    EXPECT_EQ(r.field(1).as_int(), 2);
    EXPECT_EQ(r.field(2).as_int(), 3);
    EXPECT_TRUE(h.in_nursery(r));
  });
}

TEST_F(GcTest, EmptyRecord) {
  Heap& h = make_heap();
  on_proc([&] {
    Value r = h.alloc_record({});
    EXPECT_EQ(r.length(), 0u);
  });
}

TEST_F(GcTest, ArrayStoreLoad) {
  Heap& h = make_heap();
  on_proc([&] {
    Value a = h.alloc_array(10, Value::from_int(7));
    EXPECT_EQ(a.kind(), ObjKind::kArray);
    EXPECT_EQ(a.length(), 10u);
    for (std::size_t i = 0; i < 10; i++) EXPECT_EQ(a.field(i).as_int(), 7);
    h.store(a, 3, Value::from_int(99));
    EXPECT_EQ(a.field(3).as_int(), 99);
    EXPECT_EQ(a.field(2).as_int(), 7);
  });
}

TEST_F(GcTest, RefCell) {
  Heap& h = make_heap();
  on_proc([&] {
    Value r = h.alloc_ref(Value::from_int(5));
    EXPECT_EQ(r.kind(), ObjKind::kRef);
    EXPECT_EQ(Heap::load_ref(r).as_int(), 5);
    h.store_ref(r, Value::from_int(6));
    EXPECT_EQ(Heap::load_ref(r).as_int(), 6);
  });
}

TEST_F(GcTest, BytesRoundTrip) {
  Heap& h = make_heap();
  on_proc([&] {
    Value s = h.alloc_bytes("hello, multiprocessing");
    EXPECT_EQ(s.kind(), ObjKind::kBytes);
    EXPECT_EQ(s.length(), 22u);
    EXPECT_EQ(std::string(s.bytes(), s.length()), "hello, multiprocessing");
  });
}

TEST_F(GcTest, RealBoxing) {
  Heap& h = make_heap();
  on_proc([&] {
    Value d = h.alloc_real(3.25);
    EXPECT_EQ(d.kind(), ObjKind::kReal);
    EXPECT_DOUBLE_EQ(d.as_real(), 3.25);
  });
}

TEST_F(GcTest, AllocChargesHooks) {
  Heap& h = make_heap();
  on_proc([&] {
    const auto before = hooks_.alloc_words;
    h.alloc_record({Value::from_int(1)});  // header + 1 field
    EXPECT_EQ(hooks_.alloc_words - before, 2u);
  });
}

// ---------- collection ----------

TEST_F(GcTest, RootedValueSurvivesCollection) {
  Heap& h = make_heap();
  on_proc([&] {
    Roots<1> r;
    r[0] = h.alloc_record({Value::from_int(11), Value::from_int(22)});
    const std::uint64_t before = r[0].raw_bits();
    h.collect_now();
    EXPECT_NE(r[0].raw_bits(), before) << "copying GC should move the object";
    EXPECT_TRUE(h.in_old_space(r[0]));
    EXPECT_EQ(r[0].field(0).as_int(), 11);
    EXPECT_EQ(r[0].field(1).as_int(), 22);
  });
}

TEST_F(GcTest, UnrootedGarbageIsNotCopied) {
  Heap& h = make_heap();
  on_proc([&] {
    for (int i = 0; i < 100; i++) {
      h.alloc_record({Value::from_int(i)});  // dropped immediately
    }
    h.collect_now();
    EXPECT_EQ(h.old_space_used_words(), 0u);
  });
}

TEST_F(GcTest, ReachableGraphIsCopiedOnce) {
  Heap& h = make_heap();
  on_proc([&] {
    Roots<2> r;
    r[0] = h.alloc_record({Value::from_int(1)});
    // Two records sharing one child: the child must be copied once and
    // shared after collection.
    r[1] = h.alloc_record({r[0], r[0]});
    h.collect_now();
    EXPECT_EQ(r[1].field(0).raw_bits(), r[1].field(1).raw_bits());
    EXPECT_EQ(r[1].field(0).field(0).as_int(), 1);
  });
}

TEST_F(GcTest, CyclicStructureViaRef) {
  Heap& h = make_heap();
  on_proc([&] {
    Roots<2> r;
    r[0] = h.alloc_ref(Value::nil());
    r[1] = h.alloc_record({Value::from_int(9), r[0]});
    h.store_ref(r[0], r[1]);  // cycle: ref -> record -> ref
    h.collect_now();
    Value rec = Heap::load_ref(r[0]);
    EXPECT_EQ(rec.field(0).as_int(), 9);
    EXPECT_EQ(rec.field(1).raw_bits(), r[0].raw_bits());
  });
}

TEST_F(GcTest, AutomaticMinorCollectionOnNurseryExhaustion) {
  Heap& h = make_heap(/*nursery_bytes=*/32 * 1024);
  on_proc([&] {
    Roots<1> r;
    r[0] = h.alloc_record({Value::from_int(123)});
    // Allocate far more than the nursery; collections must happen.
    for (int i = 0; i < 20000; i++) h.alloc_record({Value::from_int(i)});
    EXPECT_GT(h.stats().minor_gcs, 0u);
    EXPECT_EQ(r[0].field(0).as_int(), 123);
  });
}

TEST_F(GcTest, StoreListCatchesOldToYoungPointer) {
  Heap& h = make_heap();
  on_proc([&] {
    Roots<2> r;
    r[0] = h.alloc_ref(Value::nil());
    h.collect_now();  // promote the ref to the old generation
    ASSERT_TRUE(h.in_old_space(r[0]));
    // Store a young record into the old ref: only the store list makes this
    // reachable for the minor collection.
    r[1] = Value::nil();
    h.store_ref(r[0], h.alloc_record({Value::from_int(77)}));
    Value young = Heap::load_ref(r[0]);
    ASSERT_TRUE(h.in_nursery(young));
    h.collect_now();
    Value promoted = Heap::load_ref(r[0]);
    EXPECT_TRUE(h.in_old_space(promoted));
    EXPECT_EQ(promoted.field(0).as_int(), 77);
  });
}

TEST_F(GcTest, MajorCollectionCompactsOldSpace) {
  Heap& h = make_heap();
  on_proc([&] {
    Roots<1> r;
    r[0] = h.alloc_record({Value::from_int(5)});
    h.collect_now();  // promote
    // Promote lots of garbage to the old generation.
    {
      Roots<1> g;
      for (int i = 0; i < 50; i++) {
        g[0] = h.alloc_array(100, Value::from_int(i));
        h.collect_now();
      }
    }
    const std::size_t used_before = h.old_space_used_words();
    h.collect_now(/*force_major=*/true);
    EXPECT_LT(h.old_space_used_words(), used_before);
    EXPECT_EQ(r[0].field(0).as_int(), 5);
    EXPECT_GT(h.stats().major_gcs, 0u);
  });
}

TEST_F(GcTest, NestedRootFramesAndShadowing) {
  Heap& h = make_heap();
  on_proc([&] {
    Roots<1> outer;
    outer[0] = h.alloc_record({Value::from_int(1)});
    {
      Roots<2> inner;
      inner[0] = h.alloc_record({Value::from_int(2)});
      inner[1] = outer[0];
      h.collect_now();
      EXPECT_EQ(inner[0].field(0).as_int(), 2);
      EXPECT_EQ(inner[1].raw_bits(), outer[0].raw_bits());
    }
    h.collect_now();
    EXPECT_EQ(outer[0].field(0).as_int(), 1);
  });
}

TEST_F(GcTest, GlobalRootSurvivesAndMoves) {
  Heap& h = make_heap();
  on_proc([&] {
    GlobalRoot g(h, h.alloc_record({Value::from_int(31)}));
    h.collect_now();
    EXPECT_EQ(g.get().field(0).as_int(), 31);
    EXPECT_TRUE(h.in_old_space(g.get()));
  });
}

TEST_F(GcTest, GlobalRootMovePreservesRegistration) {
  Heap& h = make_heap();
  on_proc([&] {
    std::vector<GlobalRoot> roots;
    for (int i = 0; i < 20; i++) {
      roots.emplace_back(h, h.alloc_record({Value::from_int(i)}));
    }
    // Force vector reallocation (moves every GlobalRoot).
    roots.reserve(1000);
    h.collect_now();
    for (int i = 0; i < 20; i++) {
      EXPECT_EQ(roots[static_cast<size_t>(i)].get().field(0).as_int(), i);
    }
  });
}

TEST_F(GcTest, ContinuationSlotIsTraced) {
  Heap& h = make_heap();
  mp::cont::Cont<Value> saved;
  Value got = Value::nil();
  on_proc([&] {
    got = mp::cont::callcc<Value>([&](mp::cont::Cont<Value> k) -> Value {
      saved = std::move(k);
      mp::cont::exit_to_idle();
    });
  });
  // Deliver a heap value to the parked continuation, then collect: the
  // armed slot must be traced and updated.
  on_proc([&] {
    saved.preload(h.alloc_record({Value::from_int(55)}));
    h.collect_now();
  });
  mp::cont::run_from_idle(saved.ref(), exec_);
  ASSERT_TRUE(got.is_ptr());
  EXPECT_EQ(got.field(0).as_int(), 55);
}

TEST_F(GcTest, SuspendedThreadRootChainIsTraced) {
  Heap& h = make_heap();
  mp::cont::Cont<mp::cont::Unit> saved;
  std::int64_t observed = 0;
  on_proc([&] {
    Roots<1> r;
    r[0] = h.alloc_record({Value::from_int(642)});
    mp::cont::callcc<mp::cont::Unit>(
        [&](mp::cont::Cont<mp::cont::Unit> k) -> mp::cont::Unit {
          saved = std::move(k);
          mp::cont::exit_to_idle();
        });
    // Resumed after a collection: the suspended frame's root must have been
    // updated when the object moved.
    observed = r[0].field(0).as_int();
  });
  on_proc([&] { h.collect_now(); });
  saved.preload(mp::cont::Unit{});
  mp::cont::run_from_idle(saved.ref(), exec_);
  EXPECT_EQ(observed, 642);
}

TEST_F(GcTest, LargeArrayGoesToLargeObjectSpace) {
  Heap& h = make_heap(/*nursery_bytes=*/32 * 1024);
  on_proc([&] {
    Roots<1> r;
    r[0] = h.alloc_array(10000, Value::from_int(4));  // bigger than a chunk
    EXPECT_TRUE(h.in_los(r[0]));
    EXPECT_FALSE(h.in_old_space(r[0]));
    EXPECT_EQ(h.stats().large_allocs, 1u);
    EXPECT_GT(h.stats().los_bytes, 10000u * 8u);
    h.store(r[0], 9999, Value::from_int(-4));
    h.collect_now();
    EXPECT_EQ(r[0].field(9999).as_int(), -4);
    EXPECT_EQ(r[0].field(0).as_int(), 4);
    // LOS objects are never copied: the Value is stable across a major.
    const std::uint64_t bits_before = r[0].raw_bits();
    h.collect_now(/*force_major=*/true);
    EXPECT_EQ(r[0].raw_bits(), bits_before);
    EXPECT_TRUE(h.in_los(r[0]));
  });
}

TEST_F(GcTest, ChunkGrabStatsAccumulate) {
  Heap& h = make_heap(/*nursery_bytes=*/64 * 1024);
  on_proc([&] {
    for (int i = 0; i < 5000; i++) h.alloc_record({Value::from_int(i)});
    const auto s = h.stats();
    EXPECT_GT(s.chunk_grabs, 1u);
    EXPECT_GE(s.words_allocated, 10000u);
    EXPECT_EQ(s.allocations, 5000u);
  });
}

TEST_F(GcTest, VerifyPassesOnAHealthyHeap) {
  Heap& h = make_heap();
  on_proc([&] {
    Roots<3> r;
    r[0] = h.alloc_record({Value::from_int(1), Value::from_int(2)});
    r[1] = h.alloc_array(10, r[0]);
    r[2] = h.alloc_bytes("verify me");
    std::string err;
    EXPECT_TRUE(h.verify(&err)) << err;
    h.collect_now();
    EXPECT_TRUE(h.verify(&err)) << err;
    h.collect_now(/*force_major=*/true);
    EXPECT_TRUE(h.verify(&err)) << err;
  });
}

TEST_F(GcTest, VerifyDetectsACorruptedHeader) {
  Heap& h = make_heap();
  on_proc([&] {
    Roots<1> r;
    r[0] = h.alloc_record({Value::from_int(5)});
    h.collect_now();  // promote so the object is in the verified old space
    ASSERT_TRUE(h.in_old_space(r[0]));
    auto* words = reinterpret_cast<std::uint64_t*>(r[0].raw_bits());
    const std::uint64_t saved = words[0];
    words[0] = 0xDEADBEEFull << 4 | (7u << 1);  // invalid kind
    std::string err;
    EXPECT_FALSE(h.verify(&err));
    EXPECT_FALSE(err.empty());
    words[0] = saved;  // restore so teardown stays sane
    EXPECT_TRUE(h.verify(&err)) << err;
  });
}

// ---------- configuration ----------

TEST_F(GcTest, HeapConfigNamedSettersChain) {
  HeapConfig cfg;
  cfg.with_nursery_bytes(128 * 1024)
      .with_chunks_per_proc(2)
      .with_old_bytes(2u << 20)
      .with_major_fraction(0.5)
      .with_parallel_gc(true)
      .with_par_block_words(256);
  EXPECT_EQ(cfg.nursery_bytes, 128u * 1024);
  EXPECT_EQ(cfg.chunks_per_proc, 2u);
  EXPECT_EQ(cfg.old_bytes, 2u << 20);
  EXPECT_DOUBLE_EQ(cfg.major_fraction, 0.5);
  EXPECT_TRUE(cfg.parallel_gc);
  EXPECT_EQ(cfg.par_block_words, 256u);
  cfg.validate();  // must not panic
  Heap& h = make_heap_cfg(cfg);
  EXPECT_TRUE(h.config().parallel_gc);
  EXPECT_EQ(h.config().par_block_words, 256u);
}

// ---------- parallel collection (degenerate one-worker world) ----------

// The same object graph must survive collection identically whether the
// phase runs through gc::ParallelCopier (here with the collecting proc as
// the single worker) or the paper's sequential Cheney scan.
TEST_F(GcTest, ParallelAndSequentialCollectionAgree) {
  auto run_mode = [&](bool parallel) -> std::uint64_t {
    const HeapConfig cfg = HeapConfig{}
                               .with_nursery_bytes(64 * 1024)
                               .with_old_bytes(1u << 20)
                               .with_parallel_gc(parallel)
                               .with_par_block_words(64);
    Heap& h = make_heap_cfg(cfg);
    std::uint64_t sum = 0;
    on_proc([&] {
      Roots<2> r;
      // A list with shared substructure plus an array of refs into it.
      r[0] = Value::nil();
      for (int i = 0; i < 200; i++) {
        r[0] = h.cons(h.alloc_record({Value::from_int(i)}), r[0]);
      }
      r[1] = h.alloc_array(16, r[0]);
      h.collect_now();
      h.collect_now(/*force_major=*/true);
      std::string err;
      EXPECT_TRUE(h.verify(&err)) << err;
      for (Value p = r[1].field(7); !p.is_nil(); p = p.field(1)) {
        sum = sum * 31 + static_cast<std::uint64_t>(p.field(0).field(0).as_int());
      }
      EXPECT_EQ(r[1].field(0).raw_bits(), r[1].field(15).raw_bits())
          << "shared list head must be forwarded to one copy";
    });
    return sum;
  };
  const std::uint64_t par = run_mode(true);
  const std::uint64_t seq = run_mode(false);
  EXPECT_EQ(par, seq);
  EXPECT_NE(par, 0u);
}

// Block tails left by the parallel copier are padded with untraced filler
// objects, so the old generation still parses linearly and the live words
// reported by the copier never exceed the space consumed.
TEST_F(GcTest, ParallelCollectionPadsParse) {
  const HeapConfig cfg = HeapConfig{}
                             .with_nursery_bytes(64 * 1024)
                             .with_old_bytes(1u << 20)
                             .with_parallel_gc(true)
                             .with_par_block_words(64);
  Heap& h = make_heap_cfg(cfg);
  on_proc([&] {
    Roots<1> r;
    r[0] = Value::nil();
    for (int i = 0; i < 500; i++) {
      r[0] = h.cons(Value::from_int(i), r[0]);
    }
    h.collect_now();
    std::string err;
    ASSERT_TRUE(h.verify(&err)) << err;
    const auto s = h.stats();
    EXPECT_GE(h.old_space_used_words(), s.words_copied_minor)
        << "pads count toward space used but not toward words copied";
    // All 500 cons cells (3 words each) survived.
    EXPECT_GE(s.words_copied_minor, 1500u);
    int n = 0;
    for (Value p = r[0]; !p.is_nil(); p = p.field(1)) n++;
    EXPECT_EQ(n, 500);
  });
}

using GcDeathTest = GcTest;

TEST_F(GcDeathTest, ZeroChunkNurseryPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}.with_chunks_per_proc(0).validate(),
               "chunks_per_proc");
}

TEST_F(GcDeathTest, NonPowerOfTwoNurseryPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}.with_nursery_bytes(3 * 1024).validate(),
               "power of two");
}

TEST_F(GcDeathTest, NonPowerOfTwoOldSpacePanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}.with_old_bytes(48u << 20).validate(),
               "power of two");
}

TEST_F(GcDeathTest, BadMajorFractionPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}.with_major_fraction(0.0).validate(),
               "major_fraction");
}

TEST_F(GcDeathTest, TinyParBlockPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(HeapConfig{}.with_par_block_words(32).validate(),
               "par_block_words");
}

TEST_F(GcDeathTest, AllocationOffProcPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Heap& h = make_heap();
        mp::cont::set_current_exec(nullptr);
        h.alloc_record({});
      },
      "outside a proc");
}

TEST_F(GcDeathTest, StoreToRecordPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Heap& h = make_heap();
        on_proc([&] {
          Value r = h.alloc_record({Value::from_int(1)});
          h.store(r, 0, Value::from_int(2));
        });
      },
      "immutable");
}

TEST_F(GcDeathTest, OutOfRangeFieldPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        Heap& h = make_heap();
        on_proc([&] {
          Value r = h.alloc_record({Value::from_int(1)});
          (void)r.field(1);
        });
      },
      "out of range");
}

}  // namespace
