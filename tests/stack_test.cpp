// Tests for the pooled stack-slot subsystem: StackConfig validation, slot
// pooling and committed-byte accounting, guard-page overflow reporting (one
// death test per backend), a parked-thread mini-soak, and simulator
// bit-reproducibility of pooled-slot runs.

#include <gtest/gtest.h>

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "arch/fiber_san.h"
#include "cont/cont.h"
#include "cont/exec.h"
#include "cont/segment.h"
#include "cont/stack_config.h"
#include "mp/native_platform.h"
#include "mp/sim_platform.h"
#include "mp/uni_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

namespace {

using mp::cont::callcc;
using mp::cont::callcc_on;
using mp::cont::Cont;
using mp::cont::ContRef;
using mp::cont::exit_to_idle;
using mp::cont::make_entry;
using mp::cont::run_from_idle;
using mp::cont::SegmentPool;
using mp::cont::StackClass;
using mp::cont::StackConfig;
using mp::cont::throw_to;
using mp::cont::Unit;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;
using mp::threads::ThreadState;

// Same minimal proc as cont_test: an ExecContext plus an idle context the
// test thread drives directly.
class ManualProc {
 public:
  ManualProc() {
    exec_.idle_ctx = &idle_ctx_;
    mp::cont::set_current_exec(&exec_);
  }
  ~ManualProc() { mp::cont::set_current_exec(nullptr); }

  void run(std::function<void()> f) {
    run_from_idle(make_entry(std::move(f)), exec_);
  }
  void resume(ContRef k) { run_from_idle(std::move(k), exec_); }

 private:
  mp::cont::ExecContext exec_;
  mp::arch::Context idle_ctx_;
};

class StackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    baseline_segments_ = SegmentPool::instance().outstanding();
  }
  void TearDown() override {
    EXPECT_EQ(SegmentPool::instance().outstanding(), baseline_segments_)
        << "stack segments leaked by test";
    // Leave the process-wide pool on the default geometry for later tests.
    SegmentPool::instance().configure(StackConfig{});
  }

  std::int64_t baseline_segments_ = 0;
};

// ---- StackConfig validation: one death per rule ----

using StackConfigDeathTest = StackTest;

TEST_F(StackConfigDeathTest, SmallClassBelowMinimumPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(StackConfig{}.with_small_stack_bytes(4 * 1024).validate(),
               "small stack class below the 8 KiB minimum");
}

TEST_F(StackConfigDeathTest, LargeClassBelowSmallPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(StackConfig{}
                   .with_small_stack_bytes(32 * 1024)
                   .with_large_stack_bytes(16 * 1024)
                   .validate(),
               "large stack class smaller than the small class");
}

TEST_F(StackConfigDeathTest, ClassAboveCeilingPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      StackConfig{}.with_large_stack_bytes(std::size_t{512} << 20).validate(),
      "stack class above the 256 MiB ceiling");
}

TEST_F(StackConfigDeathTest, TooManyGuardPagesPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(StackConfig{}.with_guard_pages(65).validate(),
               "more than 64 guard pages");
}

TEST_F(StackConfigDeathTest, TooFewSlotsPerArenaPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(StackConfig{}.with_slots_per_arena(4).validate(),
               "fewer than 8 slots per arena");
}

TEST_F(StackConfigDeathTest, TooManySlotsPerArenaPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      StackConfig{}.with_slots_per_arena(std::size_t{2} << 20).validate(),
      "more than 2\\^20 slots per arena");
}

TEST_F(StackConfigDeathTest, CacheAboveCapPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(StackConfig{}.with_cache_slots_per_proc(5000).validate(),
               "per-proc slot cache above the 4096 cap");
}

TEST_F(StackConfigDeathTest, ReconfigureWithSegmentsOutstandingPanics) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ManualProc proc;
        Cont<Unit> saved;
        proc.run([&] {
          callcc<Unit>([&](Cont<Unit> k) -> Unit {
            saved = std::move(k);
            exit_to_idle();
          });
        });
        // `saved` pins a live segment; changing the geometry now must panic.
        SegmentPool::instance().configure(
            StackConfig{}.with_small_stack_bytes(32 * 1024));
      },
      "cannot reconfigure stack slots while segments are outstanding");
}

// ---- pooling behaviour ----

TEST_F(StackTest, SmallClassSegmentsAreRecycled) {
  ManualProc proc;
  const auto created_before = SegmentPool::instance().total_created();
  proc.run([&] {
    for (int i = 0; i < 1000; i++) {
      callcc_on<int>(StackClass::kSmall, [&](Cont<int> k) -> int {
        throw_to(std::move(k), 0);
      });
    }
  });
  EXPECT_LE(SegmentPool::instance().total_created() - created_before, 8);
}

TEST_F(StackTest, CallccInheritsStackClassOfCurrentSegment) {
  // A nested capture inside a kSmall body must carve kSmall replacement
  // slots, not kLarge ones: after warm-up, repeated nested captures should
  // create no fresh slots of either class.
  ManualProc proc;
  proc.run([&] {
    callcc_on<Unit>(StackClass::kSmall, [&](Cont<Unit> outer) -> Unit {
      const auto created_before = SegmentPool::instance().total_created();
      for (int i = 0; i < 500; i++) {
        callcc<int>([&](Cont<int> k) -> int {  // inherits kSmall
          throw_to(std::move(k), 0);
        });
      }
      EXPECT_LE(SegmentPool::instance().total_created() - created_before, 4);
      throw_to(std::move(outer), Unit{});
    });
  });
}

TEST_F(StackTest, CommittedBytesTrackLiveSlotsAndTrimReleasesThem) {
  std::int64_t committed_live = 0;
  {
    ManualProc proc;
    std::vector<Cont<Unit>> parked;
    for (int i = 0; i < 64; i++) {
      proc.run([&] {
        callcc_on<Unit>(StackClass::kSmall, [&](Cont<Unit> k) -> Unit {
          parked.push_back(std::move(k));
          exit_to_idle();
        });
      });
    }
    committed_live = SegmentPool::instance().committed_bytes();
    // 64 live small slots plus change must be committed.
    EXPECT_GE(committed_live,
              64 * static_cast<std::int64_t>(
                       SegmentPool::instance().config().small_stack_bytes));
    parked.clear();  // drop every suspended thread
  }  // ManualProc dtor drains the per-proc slot cache to the global pool
  SegmentPool::instance().trim();
  // Everything was released: the committed gauge must have fallen back to
  // (at most) where this test found it, minus the 64 slots we freed.
  EXPECT_LE(SegmentPool::instance().committed_bytes(),
            committed_live -
                64 * static_cast<std::int64_t>(
                         SegmentPool::instance().config().small_stack_bytes));
}

TEST_F(StackTest, PoolingOffFallsBackToPrivateMappings) {
  SegmentPool::instance().configure(StackConfig{}.with_pooling(false));
  ManualProc proc;
  int got = 0;
  proc.run([&] {
    got = callcc<int>([](Cont<int> k) -> int {
      throw_to(std::move(k), 11);
    });
  });
  EXPECT_EQ(got, 11);
}

TEST_F(StackTest, SpawnOptsThreadNamesAndSmallStacksRunEverywhere) {
  // Functional check on all three backends: a small-stack named thread runs
  // and joins.  (The fault-report content is covered by the death tests.)
  const auto opts = Scheduler::SpawnOpts{}
                        .with_stack(StackClass::kSmall)
                        .with_name("worker");
  for (int backend = 0; backend < 3; backend++) {
    std::unique_ptr<mp::Platform> p;
    if (backend == 0) {
      mp::NativePlatformConfig cfg;
      cfg.max_procs = 2;
      p = std::make_unique<mp::NativePlatform>(cfg);
    } else if (backend == 1) {
      p = std::make_unique<mp::UniPlatform>(mp::UniPlatformConfig{});
    } else {
      mp::SimPlatformConfig cfg;
      cfg.machine = mp::sim::sequent_s81(2);
      p = std::make_unique<mp::SimPlatform>(cfg);
    }
    std::atomic<int> ran{0};
    Scheduler::run(*p, {}, [&](Scheduler& s) {
      for (int i = 0; i < 8; i++) {
        s.fork([&] { ran.fetch_add(1); }, opts);
      }
    });
    EXPECT_EQ(ran.load(), 8) << "backend " << backend;
  }
}

// ---- guard-page overflow: deterministic fault, panic names the thread ----

// Burn stack until the guard page faults.  The volatile frame keeps the
// recursion honest (no tail call, no frame elision).
__attribute__((noinline)) int burn_stack(int depth) {
  volatile char frame[512];
  frame[0] = static_cast<char>(depth);
  if (depth <= 0) return frame[0];
  return burn_stack(depth - 1) + frame[0];
}

#if !MPNJ_SAN_ADDRESS && !MPNJ_SAN_THREAD
// Sanitizers own the SIGSEGV handler (and ASan would flag the guard hit
// itself); the overflow report is a plain-build feature.

using StackOverflowDeathTest = StackTest;

constexpr const char* kOverflowPattern =
    "stack overflow: thread [0-9]+ \\(burner\\) overflowed its "
    "[0-9]+-byte stack slot";

TEST_F(StackOverflowDeathTest, NativeOverflowPanicsNamingThread) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mp::NativePlatformConfig cfg;
        cfg.max_procs = 2;
        mp::NativePlatform p(cfg);
        Scheduler::run(p, {}, [&](Scheduler& s) {
          s.fork([&] { burn_stack(1 << 20); },
                 Scheduler::SpawnOpts{}
                     .with_stack(StackClass::kSmall)
                     .with_name("burner"));
        });
      },
      kOverflowPattern);
}

TEST_F(StackOverflowDeathTest, UniOverflowPanicsNamingThread) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mp::UniPlatform p(mp::UniPlatformConfig{});
        Scheduler::run(p, {}, [&](Scheduler& s) {
          s.fork([&] { burn_stack(1 << 20); },
                 Scheduler::SpawnOpts{}
                     .with_stack(StackClass::kSmall)
                     .with_name("burner"));
        });
      },
      kOverflowPattern);
}

TEST_F(StackOverflowDeathTest, SimOverflowPanicsNamingThread) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mp::SimPlatformConfig cfg;
        cfg.machine = mp::sim::sequent_s81(2);
        mp::SimPlatform p(cfg);
        Scheduler::run(p, {}, [&](Scheduler& s) {
          s.fork([&] { burn_stack(1 << 20); },
                 Scheduler::SpawnOpts{}
                     .with_stack(StackClass::kSmall)
                     .with_name("burner"));
        });
      },
      kOverflowPattern);
}

TEST_F(StackOverflowDeathTest, UnnamedThreadReportedAsUnnamed) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        mp::NativePlatformConfig cfg;
        cfg.max_procs = 2;
        mp::NativePlatform p(cfg);
        Scheduler::run(p, {}, [&](Scheduler& s) {
          s.fork([&] { burn_stack(1 << 20); },
                 Scheduler::SpawnOpts{}.with_stack(StackClass::kSmall));
        });
      },
      "stack overflow: thread [0-9]+ \\(unnamed\\)");
}

#endif  // !MPNJ_SAN_ADDRESS && !MPNJ_SAN_THREAD

// ---- mini-soak: thousands of guarded parked threads, then full drain ----

TEST_F(StackTest, TenThousandParkedGuardedThreadsDrainCleanly) {
#if MPNJ_SAN_THREAD
  // TSan models every stack slot as a fiber and dies at 8128 of them; keep
  // the same shape well under that hard limit.
  constexpr int kThreads = 4000;
#else
  constexpr int kThreads = 10000;
#endif
  mp::NativePlatformConfig cfg;
  cfg.max_procs = 2;
  cfg.stack = StackConfig{}
                  .with_small_stack_bytes(8 * 1024)
                  .with_guard_pages(1)
                  .with_slots_per_arena(1024);
  mp::NativePlatform p(cfg);
  auto& pool = SegmentPool::instance();
  Scheduler::run(p, {}, [&](Scheduler& s) {
    std::vector<ThreadState> parked(kThreads);
    std::atomic<std::size_t> idx{0};
    CountdownLatch done(s, kThreads);
    const auto opts = Scheduler::SpawnOpts{}
                          .with_stack(StackClass::kSmall)
                          .with_name("parked");
    for (int i = 0; i < kThreads; i++) {
      s.fork(
          [&] {
            s.suspend([&](ThreadState t) {
              parked[idx.fetch_add(1, std::memory_order_relaxed)] =
                  std::move(t);
            });
            done.count_down();
          },
          opts);
      if ((i & 15) == 15) s.yield();
    }
    while (idx.load(std::memory_order_acquire) < kThreads) s.yield();

    // All live at once: at least kThreads small slots are committed.
    EXPECT_GE(pool.committed_bytes(),
              static_cast<std::int64_t>(kThreads) * 8 * 1024);
    EXPECT_GE(pool.outstanding(), kThreads);

    for (auto& t : parked) s.reschedule(std::move(t));
    done.await();
  });
}

// ---- simulator bit-reproducibility with pooled slots ----

TEST_F(StackTest, SimPooledSlotRunsAreBitReproducible) {
  // Fresh-slot commits charge virtual time.  SimPlatform trims the pool
  // cold at boot, and a cold-slot acquire charges exactly what a fresh
  // carve does, so two identical runs must agree on every clock to the
  // last bit no matter what ran before them in this process.
  auto run_once = [] {
    mp::SimPlatformConfig cfg;
    cfg.machine = mp::sim::sequent_s81(4);
    mp::SimPlatform p(cfg);
    Scheduler::run(p, {}, [&](Scheduler& s) {
      CountdownLatch done(s, 200);
      for (int i = 0; i < 200; i++) {
        s.fork(
            [&, i] {
              for (int y = 0; y < (i % 5); y++) s.yield();
              done.count_down();
            },
            Scheduler::SpawnOpts{}.with_stack(
                i % 2 ? StackClass::kSmall : StackClass::kLarge));
      }
      done.await();
    });
    return p.report();
  };
  const mp::SimReport a = run_once();
  const mp::SimReport b = run_once();
  EXPECT_EQ(a.total_us, b.total_us);
  EXPECT_EQ(a.busy_us, b.busy_us);
  EXPECT_EQ(a.idle_us, b.idle_us);
  EXPECT_EQ(a.lock_acquires, b.lock_acquires);
  EXPECT_EQ(a.bus.bytes, b.bus.bytes);
}

}  // namespace
