// Tests for the src/kv subsystem: the incremental frame/reply parsers under
// adversarial read boundaries (byte-at-a-time, split mid-frame, oversized
// and malformed input with the connection kept alive), the ShardStore
// against a sequential reference, rendezvous key routing, the served
// protocol end-to-end on the simulator and on native (pipes and TCP), and
// the kv workload's exact verification + cross-schedule determinism.

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cml/mailbox.h"

#include "io/stream.h"
#include "kv/client.h"
#include "kv/proto.h"
#include "kv/server.h"
#include "kv/service.h"
#include "kv/store.h"
#include "metrics/metrics.h"
#include "mp/native_platform.h"
#include "mp/sim_platform.h"
#include "mp/uni_platform.h"
#include "threads/scheduler.h"
#include "workloads/runner.h"
#include "workloads/workload.h"

namespace {

using mp::io::Duplex;
using mp::io::Stream;
using mp::kv::FrameParser;
using mp::kv::KvClient;
using mp::kv::KvConfig;
using mp::kv::KvReq;
using mp::kv::KvService;
using mp::kv::Op;
using mp::kv::Reply;
using mp::kv::ReplyParser;
using mp::kv::Request;
using mp::kv::ShardStore;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;

void run_threads(mp::Platform& p, const std::function<void(Scheduler&)>& fn) {
  Scheduler::run(p, SchedulerConfig{}, fn);
}

std::unique_ptr<mp::Platform> sim_platform(int procs) {
  mp::SimPlatformConfig cfg;
  cfg.machine = mp::sim::sequent_s81(procs);
  return std::make_unique<mp::SimPlatform>(cfg);
}

std::unique_ptr<mp::Platform> native_platform(int procs) {
  mp::NativePlatformConfig cfg;
  cfg.max_procs = procs;
  return std::make_unique<mp::NativePlatform>(cfg);
}

// Drains every complete request out of the parser.
std::vector<Request> drain(FrameParser& p) {
  std::vector<Request> out;
  Request r;
  while (p.next(&r)) out.push_back(r);
  return out;
}

// ---------- FrameParser: read boundaries ----------

TEST(FrameParser, ParsesAMixedScriptFedByteAtATime) {
  std::string wire;
  mp::kv::encode_set(&wire, "alpha", "value-1");
  mp::kv::encode_get(&wire, "alpha");
  mp::kv::encode_del(&wire, "alpha");
  mp::kv::encode_range(&wire, "a", "z", 10);
  mp::kv::encode_stats(&wire);
  mp::kv::encode_ping(&wire);
  mp::kv::encode_quit(&wire);

  FrameParser p;
  std::vector<Request> got;
  for (const char c : wire) {
    p.feed(&c, 1);
    for (Request& r : drain(p)) got.push_back(std::move(r));
  }
  ASSERT_EQ(got.size(), 7u);
  EXPECT_EQ(got[0].op, Op::kSet);
  EXPECT_EQ(got[0].key, "alpha");
  EXPECT_EQ(got[0].value, "value-1");
  EXPECT_EQ(got[1].op, Op::kGet);
  EXPECT_EQ(got[2].op, Op::kDel);
  EXPECT_EQ(got[3].op, Op::kRange);
  EXPECT_EQ(got[3].key, "a");
  EXPECT_EQ(got[3].hi, "z");
  EXPECT_EQ(got[3].limit, 10);
  EXPECT_EQ(got[4].op, Op::kStats);
  EXPECT_EQ(got[5].op, Op::kPing);
  EXPECT_EQ(got[6].op, Op::kQuit);
  for (const Request& r : got) EXPECT_TRUE(r.ok());
}

TEST(FrameParser, EverySplitPointOfAPipelinedBatch) {
  std::string wire;
  const std::string binary("binary\n\r\0value", 14);  // newlines + NUL inside
  mp::kv::encode_set(&wire, "k1", binary);
  mp::kv::encode_get(&wire, "k1");
  mp::kv::encode_set(&wire, "k2", "");
  mp::kv::encode_get(&wire, "k2");

  for (std::size_t split = 0; split <= wire.size(); split++) {
    FrameParser p;
    std::vector<Request> got;
    p.feed(wire.data(), split);
    for (Request& r : drain(p)) got.push_back(std::move(r));
    p.feed(wire.data() + split, wire.size() - split);
    for (Request& r : drain(p)) got.push_back(std::move(r));
    ASSERT_EQ(got.size(), 4u) << "split at " << split;
    EXPECT_EQ(got[0].value, binary) << "split at " << split;
    EXPECT_EQ(got[2].op, Op::kSet);
    EXPECT_TRUE(got[2].value.empty());
  }
}

TEST(FrameParser, SetPayloadIsLengthDelimitedNotLineDelimited) {
  FrameParser p;
  const std::string wire = "SET k 5\nab\ncd\nGET k\n";
  p.feed(wire.data(), wire.size());
  Request r;
  ASSERT_TRUE(p.next(&r));
  EXPECT_EQ(r.op, Op::kSet);
  EXPECT_EQ(r.value, "ab\ncd");
  ASSERT_TRUE(p.next(&r));
  EXPECT_EQ(r.op, Op::kGet);
  EXPECT_FALSE(p.next(&r));
}

TEST(FrameParser, CrlfAndBlankLinesAreAccepted) {
  FrameParser p;
  const std::string wire = "\r\nPING\r\n\nSET a 2\r\nhi\r\nGET a\r\n";
  p.feed(wire.data(), wire.size());
  const std::vector<Request> got = drain(p);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].op, Op::kPing);
  EXPECT_EQ(got[1].value, "hi");
  EXPECT_EQ(got[2].op, Op::kGet);
}

// ---------- FrameParser: malformed input keeps the stream framed ----------

TEST(FrameParser, MalformedCommandsYieldErrorsInStreamOrder) {
  FrameParser p;
  const std::string wire =
      "BOGUS x\nGET\nSET k nope\nRANGE a\nGET ok\n";
  p.feed(wire.data(), wire.size());
  const std::vector<Request> got = drain(p);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_FALSE(got[0].ok());
  EXPECT_FALSE(got[1].ok());
  EXPECT_FALSE(got[2].ok());
  EXPECT_FALSE(got[3].ok());
  EXPECT_TRUE(got[4].ok());  // the stream recovered
  EXPECT_EQ(got[4].key, "ok");
}

TEST(FrameParser, OversizedKeyIsAnErrorAndTheParserResyncs) {
  FrameParser p;
  const std::string long_key(mp::kv::kMaxKeyBytes + 1, 'k');
  std::string wire = "GET " + long_key + "\nPING\n";
  p.feed(wire.data(), wire.size());
  const std::vector<Request> got = drain(p);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_FALSE(got[0].ok());
  EXPECT_EQ(got[1].op, Op::kPing);
}

TEST(FrameParser, OversizedValueIsSkippedByteAccurately) {
  // The payload contains newlines and command-shaped text; a parser that
  // resynced on newline instead of counting bytes would mis-frame it.
  const std::size_t huge = mp::kv::kMaxValueBytes + 17;
  std::string payload(huge, 'v');
  payload[10] = '\n';
  const std::string fake = "GET smuggled\n";
  payload.replace(100, fake.size(), fake);
  std::string wire = "SET k " + std::to_string(huge) + "\n" + payload +
                     "\nGET real\n";
  FrameParser p;
  // Feed in chunks so the discard path runs incrementally.
  std::vector<Request> got;
  for (std::size_t off = 0; off < wire.size(); off += 4096) {
    const std::size_t n = std::min<std::size_t>(4096, wire.size() - off);
    p.feed(wire.data() + off, n);
    for (Request& r : drain(p)) got.push_back(std::move(r));
  }
  ASSERT_EQ(got.size(), 2u);
  EXPECT_FALSE(got[0].ok());  // "value too long", after the skip completes
  EXPECT_TRUE(got[1].ok());
  EXPECT_EQ(got[1].key, "real");
}

TEST(FrameParser, UnterminatedLineIsDiscardedWithOneError) {
  FrameParser p;
  const std::string junk(mp::kv::kMaxLineBytes + 100, 'j');
  p.feed(junk.data(), junk.size());
  Request r;
  EXPECT_FALSE(p.next(&r));  // still no newline: nothing to report yet
  const std::string tail = "\nPING\n";
  p.feed(tail.data(), tail.size());
  const std::vector<Request> got = drain(p);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_FALSE(got[0].ok());
  EXPECT_EQ(got[1].op, Op::kPing);
}

// ---------- ReplyParser ----------

TEST(ReplyParser, RoundtripsEveryReplyKindByteAtATime) {
  std::string wire;
  mp::kv::encode_ok(&wire);
  mp::kv::encode_error(&wire, "nope");
  mp::kv::encode_int(&wire, -3);
  mp::kv::encode_bulk(&wire, "a\r\nb");  // CRLF inside a bulk body
  mp::kv::encode_nil(&wire);
  mp::kv::encode_array_header(&wire, 2);
  mp::kv::encode_bulk(&wire, "k");
  mp::kv::encode_bulk(&wire, "v");
  mp::kv::encode_array_header(&wire, 0);

  ReplyParser p;
  std::vector<Reply> got;
  Reply rep;
  for (const char c : wire) {
    p.feed(&c, 1);
    while (p.next(&rep)) got.push_back(rep);
  }
  ASSERT_EQ(got.size(), 7u);
  EXPECT_EQ(got[0].kind, Reply::Kind::kSimple);
  EXPECT_EQ(got[0].text, "OK");
  EXPECT_EQ(got[1].kind, Reply::Kind::kError);
  EXPECT_EQ(got[1].text, "nope");  // "ERR " prefix stripped
  EXPECT_EQ(got[2].kind, Reply::Kind::kInt);
  EXPECT_EQ(got[2].ival, -3);
  EXPECT_EQ(got[3].kind, Reply::Kind::kBulk);
  EXPECT_EQ(got[3].text, "a\r\nb");
  EXPECT_EQ(got[4].kind, Reply::Kind::kNil);
  EXPECT_EQ(got[5].kind, Reply::Kind::kArray);
  ASSERT_EQ(got[5].items.size(), 2u);
  EXPECT_EQ(got[5].items[0], "k");
  EXPECT_EQ(got[5].items[1], "v");
  EXPECT_EQ(got[6].kind, Reply::Kind::kArray);
  EXPECT_TRUE(got[6].items.empty());
}

// ---------- ShardStore ----------

TEST(ShardStore, PointOpsMatchAMapReference) {
  ShardStore store(42);
  std::map<std::string, std::string> ref;
  std::uint64_t rng = 0x12345678;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int i = 0; i < 5000; i++) {
    const std::string key = "key" + std::to_string(next() % 257);
    const std::uint64_t roll = next() % 10;
    if (roll < 6) {
      const std::string val = "v" + std::to_string(next() % 1000);
      const bool fresh = store.set(key, val);
      EXPECT_EQ(fresh, ref.find(key) == ref.end());
      ref[key] = val;
    } else if (roll < 8) {
      const std::string* got = store.get(key);
      const auto it = ref.find(key);
      if (it == ref.end()) {
        EXPECT_EQ(got, nullptr);
      } else {
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, it->second);
      }
    } else {
      EXPECT_EQ(store.del(key), ref.erase(key) > 0);
    }
    ASSERT_EQ(store.size(), ref.size());
  }
}

TEST(ShardStore, RangeIsInclusiveSortedAndLimited) {
  ShardStore store(7);
  std::map<std::string, std::string> ref;
  for (int i = 0; i < 100; i++) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%03d", i * 3);  // gaps between keys
    store.set(buf, std::to_string(i));
    ref[buf] = std::to_string(i);
  }
  const auto collect = [&](const std::string& lo, const std::string& hi,
                           long limit) {
    std::vector<std::pair<std::string, std::string>> out;
    store.range(lo, hi, limit, [&](std::string_view k, std::string_view v) {
      out.emplace_back(k, v);
      return true;
    });
    return out;
  };
  // Inclusive on both bounds, including bounds that are not present.
  auto got = collect("k006", "k012", -1);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got.front().first, "k006");
  EXPECT_EQ(got.back().first, "k012");
  got = collect("k005", "k013", -1);  // neither bound exists
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got.front().first, "k006");
  // Limit truncates from the low end.
  got = collect("k000", "k999", 5);
  ASSERT_EQ(got.size(), 5u);
  EXPECT_EQ(got[4].first, "k012");
  // Early-stop from the callback.
  int seen = 0;
  store.range("k000", "k999", -1, [&](std::string_view, std::string_view) {
    return ++seen < 2;
  });
  EXPECT_EQ(seen, 2);
  // Empty and inverted ranges.
  EXPECT_TRUE(collect("x", "z", -1).empty());
  EXPECT_TRUE(collect("k012", "k006", -1).empty());
  // Full sweep matches the reference order exactly.
  got = collect("", "\x7f", -1);
  ASSERT_EQ(got.size(), ref.size());
  auto it = ref.begin();
  for (const auto& [k, v] : got) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(ShardStore, DeterministicAcrossInstancesWithTheSameSeed) {
  ShardStore a(99), b(99);
  for (int i = 0; i < 500; i++) {
    const std::string k = "k" + std::to_string(i);
    a.set(k, k);
    b.set(k, k);
  }
  EXPECT_EQ(a.bytes(), b.bytes());
  EXPECT_EQ(a.size(), b.size());
}

// ---------- routing ----------

TEST(KvService, RendezvousRoutingIsStableAndCoversAllShards) {
  auto p = sim_platform(4);
  run_threads(*p, [](Scheduler& sched) {
    KvConfig cfg;
    cfg.shards = 4;
    KvService svc(sched, cfg);
    std::vector<int> hits(4, 0);
    for (int i = 0; i < 400; i++) {
      const std::string key = "key-" + std::to_string(i);
      const int s = svc.shard_of(key);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, 4);
      EXPECT_EQ(svc.shard_of(key), s);  // stable
      hits[static_cast<std::size_t>(s)]++;
    }
    for (int s = 0; s < 4; s++) EXPECT_GT(hits[static_cast<std::size_t>(s)], 0);
  });
}

// ---------- served protocol, end to end ----------

void serve_one_connection_checks(Scheduler& sched, int shards) {
  KvConfig cfg;
  cfg.shards = shards;
  KvService svc(sched, cfg);
  svc.start();
  auto [client_end, server_end] = mp::io::duplex_pipe(sched, 4096);
  CountdownLatch served(sched, 1);
  sched.fork([&svc, &served, server_end]() mutable {
    mp::kv::serve(svc, server_end);
    served.count_down();
  });

  KvClient cli(client_end);
  EXPECT_TRUE(cli.ping());
  EXPECT_TRUE(cli.set("a:1", "one"));
  EXPECT_TRUE(cli.set("a:2", "two"));
  EXPECT_TRUE(cli.set("b:1", "three"));
  std::string v;
  EXPECT_TRUE(cli.get("a:1", &v));
  EXPECT_EQ(v, "one");
  EXPECT_FALSE(cli.get("missing", &v));
  EXPECT_EQ(cli.del("a:2"), 1);
  EXPECT_EQ(cli.del("a:2"), 0);

  // RANGE merges slices across all shards back into one sorted run.
  EXPECT_TRUE(cli.set("a:2", "2"));
  const auto pairs = cli.range("a:0", "b:9", -1);
  ASSERT_EQ(pairs.size(), 3u);
  EXPECT_EQ(pairs[0].first, "a:1");
  EXPECT_EQ(pairs[1].first, "a:2");
  EXPECT_EQ(pairs[2].first, "b:1");
  EXPECT_EQ(pairs[1].second, "2");
  const auto limited = cli.range("a:0", "b:9", 2);
  ASSERT_EQ(limited.size(), 2u);
  EXPECT_EQ(limited[1].first, "a:2");

  const std::string st = cli.stats();
  EXPECT_NE(st.find("keys=3"), std::string::npos);
  EXPECT_NE(st.find("shards=" + std::to_string(svc.shards())),
            std::string::npos);

  // A protocol error answers -ERR and keeps the connection alive.
  cli.queue_raw("NOSUCH op\n");
  cli.flush();
  Reply rep = cli.recv_reply();
  EXPECT_EQ(rep.kind, Reply::Kind::kError);
  EXPECT_TRUE(cli.ping());

  // Pipelined batch across shards comes back in request order.
  for (int i = 0; i < 16; i++) {
    cli.queue_set("p:" + std::to_string(i), std::to_string(i));
  }
  for (int i = 0; i < 16; i++) cli.queue_get("p:" + std::to_string(i));
  cli.flush();
  for (int i = 0; i < 16; i++) {
    rep = cli.recv_reply();
    EXPECT_EQ(rep.kind, Reply::Kind::kSimple);
  }
  for (int i = 0; i < 16; i++) {
    rep = cli.recv_reply();
    ASSERT_EQ(rep.kind, Reply::Kind::kBulk);
    EXPECT_EQ(rep.text, std::to_string(i));
  }

  cli.quit();
  served.await();
  svc.stop();
}

TEST(KvServe, SimPipeEndToEnd) {
  auto p = sim_platform(4);
  run_threads(*p, [](Scheduler& sched) {
    serve_one_connection_checks(sched, 4);
  });
}

TEST(KvServe, SingleShardStillServes) {
  auto p = sim_platform(2);
  run_threads(*p, [](Scheduler& sched) {
    serve_one_connection_checks(sched, 1);
  });
}

TEST(KvServe, NativePipeEndToEnd) {
  auto p = native_platform(4);
  run_threads(*p, [](Scheduler& sched) {
    serve_one_connection_checks(sched, 4);
  });
}

TEST(KvServe, SplitFramesOverTheWire) {
  // Push a pipelined batch through the stream a few bytes at a time: the
  // server's incremental parser must reassemble frames regardless of how
  // reads line up, and replies must come back in request order.
  auto p = sim_platform(2);
  run_threads(*p, [](Scheduler& sched) {
    KvService svc(sched);
    svc.start();
    auto [client_end, server_end] = mp::io::duplex_pipe(sched, 4096);
    CountdownLatch served(sched, 1);
    sched.fork([&svc, &served, server_end]() mutable {
      mp::kv::serve(svc, server_end);
      served.count_down();
    });

    std::string wire;
    for (int i = 0; i < 8; i++) {
      mp::kv::encode_set(&wire, "s:" + std::to_string(i), "val\n" +
                                     std::to_string(i));
    }
    for (int i = 0; i < 8; i++) {
      mp::kv::encode_get(&wire, "s:" + std::to_string(i));
    }
    Stream out = client_end.out;
    for (std::size_t off = 0; off < wire.size(); off += 3) {
      const std::size_t n = std::min<std::size_t>(3, wire.size() - off);
      out.write_all(wire.data() + off, n);
    }

    ReplyParser rp;
    Stream in = client_end.in;
    std::vector<Reply> got;
    char chunk[64];
    Reply rep;
    while (got.size() < 16) {
      const std::size_t n = in.read_some(chunk, sizeof(chunk));
      ASSERT_GT(n, 0u);
      rp.feed(chunk, n);
      while (rp.next(&rep)) got.push_back(rep);
    }
    for (int i = 0; i < 8; i++) {
      EXPECT_EQ(got[static_cast<std::size_t>(i)].kind, Reply::Kind::kSimple);
    }
    for (int i = 0; i < 8; i++) {
      const Reply& r = got[static_cast<std::size_t>(8 + i)];
      ASSERT_EQ(r.kind, Reply::Kind::kBulk);
      EXPECT_EQ(r.text, "val\n" + std::to_string(i));
    }
    client_end.close();
    served.await();
    svc.stop();
  });
}

TEST(KvServe, NativeTcpEndToEnd) {
  auto p = native_platform(2);
  run_threads(*p, [](Scheduler& sched) {
    KvService svc(sched);
    svc.start();
    mp::io::Reactor reactor(sched);
    auto listener = mp::io::Listener::tcp(reactor, 0, 16);
    CountdownLatch served(sched, 1);
    sched.fork([&] {
      Stream s = listener.accept();
      mp::kv::serve(svc, Duplex{s, s});
      served.count_down();
    });
    Stream c = Stream::connect_tcp(reactor, listener.port());
    KvClient cli(c, c);
    EXPECT_TRUE(cli.set("tcp:k", "v"));
    std::string v;
    EXPECT_TRUE(cli.get("tcp:k", &v));
    EXPECT_EQ(v, "v");
    cli.quit();
    served.await();
    svc.stop();
    listener.close();
  });
}

TEST(KvServe, AbruptDisconnectWithRequestsInFlightDrainsCleanly) {
  auto p = sim_platform(2);
  run_threads(*p, [](Scheduler& sched) {
    KvService svc(sched);
    svc.start();
    auto [client_end, server_end] = mp::io::duplex_pipe(sched, 4096);
    CountdownLatch served(sched, 1);
    sched.fork([&svc, &served, server_end]() mutable {
      mp::kv::serve(svc, server_end);
      served.count_down();
    });
    std::string wire;
    for (int i = 0; i < 8; i++) {
      mp::kv::encode_set(&wire, "d:" + std::to_string(i), "x");
    }
    Stream out = client_end.out;
    out.write_all(wire.data(), wire.size());
    client_end.close();  // hang up without reading a single reply
    served.await();      // serve() must still terminate
    svc.stop();
  });
}

TEST(KvServe, NativeTcpRstWithUnreadRepliesStillServes) {
  // A peer that pipelines requests, never reads a reply, and closes with
  // SO_LINGER zero hits the server with a TCP RST instead of a clean EOF:
  // the server's next read raises ECONNRESET.  serve() must treat that as
  // a disconnect — run its shutdown handshake and return — and the service
  // must keep serving fresh connections afterwards.
  auto p = native_platform(2);
  run_threads(*p, [](Scheduler& sched) {
    KvService svc(sched);
    svc.start();
    mp::io::Reactor reactor(sched);
    auto listener = mp::io::Listener::tcp(reactor, 0, 16);
    CountdownLatch served(sched, 1);
    sched.fork([&] {
      Stream s = listener.accept();
      mp::kv::serve(svc, Duplex{s, s});
      served.count_down();
    });

    // Raw loopback socket so we control the close semantics exactly.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener.port());
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    std::string wire;
    for (int i = 0; i < 64; i++) {
      mp::kv::encode_set(&wire, "rst:" + std::to_string(i), "x");
      mp::kv::encode_get(&wire, "rst:" + std::to_string(i));
    }
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));
    const struct linger lg = {1, 0};  // close() discards and sends RST
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg)), 0);
    ::close(fd);
    served.await();  // must not hang and must not kill the forked thread

    // The reset connection must not have poisoned the service.
    CountdownLatch served2(sched, 1);
    sched.fork([&] {
      Stream s = listener.accept();
      mp::kv::serve(svc, Duplex{s, s});
      served2.count_down();
    });
    Stream c = Stream::connect_tcp(reactor, listener.port());
    KvClient cli(c, c);
    EXPECT_TRUE(cli.set("post-rst", "ok"));
    std::string v;
    EXPECT_TRUE(cli.get("post-rst", &v));
    EXPECT_EQ(v, "ok");
    cli.quit();
    served2.await();
    svc.stop();
    listener.close();
  });
}

TEST(KvService, StalledReplyConsumerDoesNotBlockTheShard) {
  // Reply delivery is a mailbox post, not a rendezvous: a connection whose
  // writer has stopped draining (peer reads nothing, write_all parked) must
  // not park the shard owner, or it would head-of-line block every other
  // connection that shard owes a reply to.  With rendezvous replies this
  // test deadlocks on the first undrained request.
  auto p = sim_platform(2);
  run_threads(*p, [](Scheduler& sched) {
    KvConfig cfg;
    cfg.shards = 1;  // one shard owns every key: maximum interference
    KvService svc(sched, cfg);
    svc.start();
    mp::cml::Mailbox<std::uint64_t> stalled(sched);
    std::vector<KvReq> parked(8);
    for (int i = 0; i < 8; i++) {
      parked[static_cast<std::size_t>(i)].req.op = Op::kSet;
      parked[static_cast<std::size_t>(i)].req.key = "s:" + std::to_string(i);
      parked[static_cast<std::size_t>(i)].req.value = "v";
      parked[static_cast<std::size_t>(i)].reply = &stalled;
      svc.submit(&parked[static_cast<std::size_t>(i)]);
    }
    // Nobody has drained `stalled`, yet the same shard keeps serving.
    mp::cml::Mailbox<std::uint64_t> live(sched);
    KvReq q;
    q.req.op = Op::kGet;
    q.req.key = "s:3";
    q.reply = &live;
    svc.submit(&q);
    auto* done = reinterpret_cast<KvReq*>(live.recv());
    EXPECT_EQ(done, &q);
    EXPECT_FALSE(q.out.empty());  // the shard applied and encoded the GET
    // Drain the stalled replies before their stack frames go away.
    for (int i = 0; i < 8; i++) (void)stalled.recv();
    svc.stop();
  });
}

// ---------- the kv workload: exact verification + determinism ----------

TEST(KvWorkload, VerifiesOnTheSimulator) {
  mp::workloads::SimRunSpec spec;
  spec.workload = "kv";
  spec.machine = mp::sim::sequent_s81(4);
  const auto r = mp::workloads::run_sim(spec);
  EXPECT_TRUE(r.verified);
  EXPECT_NE(r.checksum, 0u);
}

TEST(KvWorkload, SimRunsAreDeterministic) {
  mp::workloads::SimRunSpec spec;
  spec.workload = "kv";
  spec.machine = mp::sim::sequent_s81(3);
  const auto a = mp::workloads::run_sim(spec);
  const auto b = mp::workloads::run_sim(spec);
  EXPECT_TRUE(a.verified);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.report.total_us, b.report.total_us);
}

TEST(KvWorkload, ChecksumIsIndependentOfShardAndProcCount) {
  mp::workloads::SimRunSpec spec;
  spec.workload = "kv";
  spec.machine = mp::sim::sequent_s81(1);
  const auto one = mp::workloads::run_sim(spec);
  spec.machine = mp::sim::sequent_s81(4);
  const auto four = mp::workloads::run_sim(spec);
  EXPECT_TRUE(one.verified);
  EXPECT_TRUE(four.verified);
  EXPECT_EQ(one.checksum, four.checksum);
}

TEST(KvWorkload, VerifiesOnNativeWithPipesAndTcp) {
  for (const bool tcp : {false, true}) {
    mp::workloads::KvWorkloadOptions opts;
    opts.connections = 4;
    opts.ops = 32;
    opts.tcp = tcp;
    auto w = mp::workloads::make_kv(opts);
    auto p = native_platform(4);
    run_threads(*p, [&](Scheduler& sched) { w->run(sched, 4); });
    EXPECT_TRUE(w->verify()) << (tcp ? "tcp" : "pipe");
  }
}

#if MPNJ_METRICS
TEST(KvWorkload, OpCountersAdvance) {
  auto& reg = mp::metrics::registry();
  if (!reg.enabled()) GTEST_SKIP() << "metrics disabled via MPNJ_METRICS=0";
  const auto before = reg.snapshot();
  mp::workloads::SimRunSpec spec;
  spec.workload = "kv";
  spec.machine = mp::sim::sequent_s81(2);
  const auto r = mp::workloads::run_sim(spec);
  EXPECT_TRUE(r.verified);
  const auto after = reg.snapshot();
  using mp::metrics::Counter;
  EXPECT_GT(after.counter(Counter::kKvSets), before.counter(Counter::kKvSets));
  EXPECT_GT(after.counter(Counter::kKvGets), before.counter(Counter::kKvGets));
  EXPECT_GT(after.counter(Counter::kKvConns),
            before.counter(Counter::kKvConns));
  EXPECT_GT(after.histo(mp::metrics::Histo::kKvReqUsGet).count,
            before.histo(mp::metrics::Histo::kKvReqUsGet).count);
}
#endif

}  // namespace
