// Dining philosophers on the thread package: five compute-bound threads
// sharing five user-level mutexes, with asymmetric acquisition order to
// avoid deadlock.  Exercises fork, Mutex handoff, preemptive scheduling
// and the per-proc datum (thread ids).
//
// Build and run:  ./build/examples/philosophers

#include <cstdio>

#include "mp/native_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

using mp::threads::CountdownLatch;
using mp::threads::Mutex;
using mp::threads::Scheduler;
using mp::threads::SchedulerConfig;

int main() {
  constexpr int kPhilosophers = 5;
  constexpr int kMeals = 20;

  mp::NativePlatformConfig config;
  config.max_procs = 3;
  mp::NativePlatform platform(config);

  SchedulerConfig sched_config;
  sched_config.preempt_interval_us = 2000;  // preempt long thinkers

  int meals[kPhilosophers] = {};
  Scheduler::run(platform, std::move(sched_config), [&](Scheduler& s) {
    std::unique_ptr<Mutex> forks[kPhilosophers];
    for (auto& f : forks) f = std::make_unique<Mutex>(s);

    CountdownLatch done(s, kPhilosophers);
    for (int i = 0; i < kPhilosophers; i++) {
      s.fork([&, i] {
        Mutex& first = *forks[i % 2 == 0 ? i : (i + 1) % kPhilosophers];
        Mutex& second = *forks[i % 2 == 0 ? (i + 1) % kPhilosophers : i];
        for (int m = 0; m < kMeals; m++) {
          // think
          for (int w = 0; w < 200; w++) s.platform().work(50);
          first.lock();
          second.lock();
          meals[i]++;  // eat
          second.unlock();
          first.unlock();
        }
        std::printf("philosopher %d (thread %d) finished eating\n", i, s.id());
        done.count_down();
      });
    }
    done.await();
  });

  bool ok = true;
  for (int i = 0; i < kPhilosophers; i++) {
    std::printf("philosopher %d ate %d meals\n", i, meals[i]);
    ok = ok && meals[i] == kMeals;
  }
  std::printf(ok ? "no philosopher starved\n" : "BUG: missing meals!\n");
  return ok ? 0 : 1;
}
