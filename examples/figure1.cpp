// The paper's Figure 1, runnable: a uniprocessor thread package built from
// nothing but first-class continuations and a queue, with the scheduling
// policy chosen by the queue parameter ("thread scheduling policy can be
// changed simply by varying the functor's argument").
//
// Build and run:  ./build/examples/figure1

#include <cstdio>

#include "threads/unithread.h"

using mp::threads::UniFifo;
using mp::threads::UniRandom;
using mp::threads::UniThread;

template <typename Queue>
void demo(const char* label, Queue queue) {
  std::printf("--- %s ---\n", label);
  UniThread<Queue>::run(
      [&](UniThread<Queue>& t) {
        for (int who = 1; who <= 3; who++) {
          t.fork([&t, who] {
            for (int step = 0; step < 3; step++) {
              std::printf("thread %d (id %d), step %d\n", who, t.id(), step);
              t.yield();
            }
          });
        }
        std::printf("main (id %d) forked everyone; yielding\n", t.id());
      },
      std::move(queue));
  std::printf("queue drained; all threads finished\n\n");
}

int main() {
  demo("FIFO discipline (round robin)", UniFifo());
  demo("randomized discipline (seed 7)", UniRandom(7));
  return 0;
}
