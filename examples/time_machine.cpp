// Time machine: run the same client program on three simulated 1993
// multiprocessors and compare where the time goes.  The program is the
// paper's mm benchmark; the machines are the three MP ports (Sequent
// Symmetry, SGI 4D/380S, Luna88k).  Shows how the deterministic simulator
// backend is used for architecture studies: same client code, different
// MachineModel.
//
// Build and run:  ./build/examples/time_machine

#include <cstdio>

#include "workloads/runner.h"

using namespace mp::workloads;

int main() {
  struct Port {
    const char* label;
    mp::sim::MachineModel machine;
  };
  const Port ports[] = {
      {"Sequent Symmetry S81 (16x 16MHz 80386)", mp::sim::sequent_s81(16)},
      {"SGI 4D/380S          (8x 33MHz R3000)", mp::sim::sgi_4d380(8)},
      {"Omron Luna88k        (4x 25MHz 88100)", mp::sim::luna88k(4)},
  };

  std::printf("running the paper's mm benchmark (100x100 integer matrix\n");
  std::printf("multiply) on three simulated 1993 multiprocessors:\n\n");
  std::printf("%-41s %10s %8s %7s %7s %6s\n", "machine", "T(ms)", "speedup",
              "bus%", "idle%", "gc%");
  std::printf("-----------------------------------------------------------------------------------\n");

  for (const Port& port : ports) {
    SimRunSpec spec;
    spec.workload = "mm";
    spec.machine = port.machine;
    const auto full = run_sim(spec);
    spec.machine.num_procs = 1;
    const auto uni = run_sim(spec);
    const double speedup = uni.report.total_us / full.report.total_us;
    const double proc_time = full.report.total_us * full.procs;
    std::printf("%-41s %10.1f %7.2fx %6.1f%% %6.1f%% %5.1f%%\n", port.label,
                full.report.total_us / 1000.0, speedup,
                100 * full.report.bus_utilization(),
                100 * full.report.idle_fraction(),
                100 * (full.report.gc_us + full.report.gc_wait_us) / proc_time);
    if (!full.verified || !uni.verified) {
      std::printf("  VERIFICATION FAILED\n");
      return 1;
    }
  }

  std::printf("\nthe slow Sequent scales almost linearly; the fast SGI saturates\n");
  std::printf("its barely-larger bus and stops scaling — the paper's closing\n");
  std::printf("observation, reproduced on your laptop.\n");
  return 0;
}
