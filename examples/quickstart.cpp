// Quickstart: the MP platform in one page.
//
//   * create a platform (real kernel threads here; see time_machine.cpp for
//     the simulated multiprocessor),
//   * run a thread package on it (paper Figure 3),
//   * fork threads, share the heap, synchronize, communicate.
//
// Build and run:  ./build/examples/quickstart

#include <cstdio>

#include "cml/cml.h"
#include "gc/heap.h"
#include "mp/native_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

using mp::gc::Roots;
using mp::gc::Value;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;

int main() {
  // A platform with up to 4 procs (kernel threads sharing this process).
  mp::NativePlatformConfig config;
  config.max_procs = 4;
  mp::NativePlatform platform(config);

  Scheduler::run(platform, {}, [&](Scheduler& s) {
    std::printf("root thread %d running on proc %d of %d\n", s.id(),
                s.platform().proc_id(), s.platform().max_procs());

    // --- fork/join -------------------------------------------------------
    CountdownLatch done(s, 3);
    long partial[3] = {0, 0, 0};
    for (int t = 0; t < 3; t++) {
      s.fork([&, t] {
        long acc = 0;
        for (int i = t * 1000; i < (t + 1) * 1000; i++) acc += i;
        partial[t] = acc;
        done.count_down();
      });
    }
    done.await();
    std::printf("sum of 0..2999 computed by 3 threads: %ld\n",
                partial[0] + partial[1] + partial[2]);

    // --- the shared ML-style heap ---------------------------------------
    auto& h = s.platform().heap();
    Roots<1> r;  // every Value held across an allocation must be rooted
    r[0] = h.alloc_record({Value::from_int(1993), h.alloc_bytes("PPOPP")});
    std::printf("heap record: (%ld, \"%.*s\")\n", r[0].field(0).as_int(),
                static_cast<int>(r[0].field(1).length()),
                r[0].field(1).bytes());

    // --- synchronous channels (paper section 4.2) ------------------------
    mp::cml::Channel<int> ch(s);
    s.fork([&] {
      for (int i = 0; i < 3; i++) ch.send(i * i);
    });
    for (int i = 0; i < 3; i++) {
      std::printf("received %d\n", ch.recv());
    }
  });
  std::printf("all threads completed; platform shut down cleanly\n");
  return 0;
}
