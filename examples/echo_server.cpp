// A TCP echo server on the mp::io reactor: every connection is a pair of
// cooperative MLthreads (a framing loop and an uppercasing worker joined by
// CML channels), and every socket operation that would block parks only the
// calling thread — the procs keep running other work or sleep in the
// reactor's bounded epoll wait.  A loopback client fleet drives it and
// checks the replies.
//
// Build and run:  ./build/examples/echo_server

#include <atomic>
#include <cctype>
#include <cstdio>
#include <string>

#include "cml/cml.h"
#include "io/reactor.h"
#include "io/stream.h"
#include "mp/native_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

using mp::cml::Channel;
using mp::io::Listener;
using mp::io::Reactor;
using mp::io::Stream;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;

namespace {

constexpr int kClients = 8;
constexpr int kRoundsPerClient = 5;

// Read one '\n'-terminated line; empty return means EOF.
std::string read_line(Stream& s) {
  std::string line;
  char c;
  while (s.read_some(&c, 1) == 1) {
    if (c == '\n') break;
    line.push_back(c);
  }
  return line;
}

}  // namespace

int main() {
  mp::NativePlatformConfig config;
  config.max_procs = 4;
  mp::NativePlatform platform(config);

  std::atomic<int> served{0};
  std::atomic<int> verified{0};
  Scheduler::run(platform, {}, [&](Scheduler& s) {
    Reactor reactor(s);
    Listener listener = Listener::tcp(reactor);
    std::printf("echo server listening on 127.0.0.1:%u\n", listener.port());

    // The reactor and listener die with this scope, so every thread that
    // touches a stream is joined through these latches before returning.
    CountdownLatch servers_done(s, kClients);
    CountdownLatch clients_done(s, kClients);

    // Connection threads spend their lives parked on channels or in the
    // reactor; small stack slots keep a big fleet cheap.
    const auto conn_opts = Scheduler::SpawnOpts{}.with_stack(
        mp::cont::StackClass::kSmall);
    s.fork([&] {  // acceptor: one server pair per connection
      for (int i = 0; i < kClients; i++) {
        Stream conn = listener.accept();
        auto lines = std::make_shared<Channel<std::uint64_t>>(s);
        auto replies = std::make_shared<Channel<std::uint64_t>>(s);
        s.fork(
            [lines, replies] {  // worker: uppercase each line
              for (;;) {
                auto* line = reinterpret_cast<std::string*>(lines->recv());
                const bool last = line->empty();
                for (char& ch : *line) {
                  ch = static_cast<char>(
                      std::toupper(static_cast<unsigned char>(ch)));
                }
                replies->send(reinterpret_cast<std::uint64_t>(line));
                if (last) return;
              }
            },
            Scheduler::SpawnOpts{conn_opts}.with_name("echo-worker"));
        s.fork(
            [conn, lines, replies, &servers_done]() mutable {  // framing
              for (;;) {
                auto* line = new std::string(read_line(conn));
                lines->send(reinterpret_cast<std::uint64_t>(line));
                auto* reply = reinterpret_cast<std::string*>(replies->recv());
                const bool last = reply->empty();
                if (!last) {
                  *reply += '\n';
                  conn.write_all(reply->data(), reply->size());
                }
                delete reply;
                if (last) break;
              }
              conn.close();
              servers_done.count_down();
            },
            Scheduler::SpawnOpts{conn_opts}.with_name("echo-framing"));
      }
    });

    for (int c = 0; c < kClients; c++) {
      s.fork([&, c] {
        Stream conn = Stream::connect_tcp(reactor, listener.port());
        for (int r = 0; r < kRoundsPerClient; r++) {
          std::string msg =
              "hello from client " + std::to_string(c) + " round " +
              std::to_string(r) + "\n";
          conn.write_all(msg.data(), msg.size());
          std::string expect = msg.substr(0, msg.size() - 1);
          for (char& ch : expect) {
            ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
          }
          if (read_line(conn) == expect) verified.fetch_add(1);
        }
        conn.write_all("\n", 1);  // empty line: polite shutdown
        conn.close();
        served.fetch_add(1);
        clients_done.count_down();
      });
    }

    clients_done.await();
    servers_done.await();
    listener.close();
  });

  std::printf("served %d clients, %d/%d replies verified\n", served.load(),
              verified.load(), kClients * kRoundsPerClient);
  return verified.load() == kClients * kRoundsPerClient ? 0 : 1;
}
