// The classic CSP prime sieve as a pipeline of threads connected by
// synchronous channels (paper section 4.2): a generator feeds candidate
// integers into a chain of filter threads, one per discovered prime.
// Exercises dynamic thread creation and channel rendezvous at scale —
// continuation-based threads are cheap enough that "hundreds or even
// thousands" of them are fine (paper section 2).
//
// Build and run:  ./build/examples/primes_pipeline [limit]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "cml/cml.h"
#include "mp/native_platform.h"
#include "threads/scheduler.h"

using mp::cml::Channel;
using mp::threads::Scheduler;

int main(int argc, char** argv) {
  const int limit = argc > 1 ? std::atoi(argv[1]) : 300;

  mp::NativePlatformConfig config;
  config.max_procs = 2;
  mp::NativePlatform platform(config);

  std::vector<int> primes;
  Scheduler::run(platform, {}, [&](Scheduler& s) {
    // Channels are owned here and freed after every thread has finished.
    std::vector<std::unique_ptr<Channel<int>>> channels;
    channels.push_back(std::make_unique<Channel<int>>(s));

    s.fork([&, out = channels[0].get()] {  // generator
      for (int n = 2; n <= limit; n++) out->send(n);
      out->send(-1);  // end of stream
    });

    Channel<int>* in = channels[0].get();
    for (;;) {
      const int p = in->recv();
      if (p < 0) break;
      primes.push_back(p);
      // Insert a filter thread for p between `in` and a fresh channel.
      channels.push_back(std::make_unique<Channel<int>>(s));
      Channel<int>* out = channels.back().get();
      s.fork([&s, p, in, out] {
        (void)s;
        for (;;) {
          const int n = in->recv();
          if (n < 0) {
            out->send(-1);
            return;
          }
          if (n % p != 0) out->send(n);
        }
      });
      in = out;
    }
  });

  std::printf("%zu primes <= %d:", primes.size(), limit);
  for (std::size_t i = 0; i < primes.size(); i++) {
    if (i < 12 || i + 3 > primes.size()) {
      std::printf(" %d", primes[i]);
    } else if (i == 12) {
      std::printf(" ...");
    }
  }
  std::printf("\n(one filter thread per prime: %zu threads lived in the pipeline)\n",
              primes.size());
  return primes.size() >= 2 && primes[0] == 2 && primes[1] == 3 ? 0 : 1;
}
