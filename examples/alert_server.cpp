// A request server assembled from the extension layers: a Mailbox-fed
// worker pool (ML Threads handles with join), request timeouts via CML
// timeout events, and a clean shutdown by alerting the workers.
//
// Build and run:  ./build/examples/alert_server

#include <cstdio>

#include "cml/cml.h"
#include "cml/sync_cells.h"
#include "mp/native_platform.h"
#include "threads/mlthreads.h"
#include "threads/scheduler.h"

using mp::cont::Unit;
using mp::cml::Channel;
using mp::cml::Mailbox;
using mp::threads::alert_pause;
using mp::threads::Alerted;
using mp::threads::fork_thread;
using mp::threads::Scheduler;
using mp::threads::Thread;

int main() {
  mp::NativePlatformConfig config;
  config.max_procs = 3;
  mp::NativePlatform platform(config);

  constexpr int kWorkers = 3;
  constexpr int kRequests = 30;

  long processed_total = 0;
  Scheduler::run(platform, {}, [&](Scheduler& s) {
    Mailbox<long> requests(s);   // async queue: clients never block
    Channel<long> replies(s);    // synchronous reply rendezvous

    // Worker pool: each worker drains the mailbox until alerted.
    std::vector<Thread<long>> workers;
    for (int w = 0; w < kWorkers; w++) {
      workers.push_back(fork_thread<long>(s, [&, w] {
        long handled = 0;
        try {
          for (;;) {
            auto req = requests.try_recv();
            if (!req.has_value()) {
              alert_pause(s);  // poll for shutdown while idle
              continue;
            }
            // "Process" the request.
            s.platform().work(200);
            replies.send(*req * 2);
            handled++;
          }
        } catch (const Alerted&) {
          std::printf("worker %d shutting down after %ld requests\n", w,
                      handled);
        }
        return handled;
      }));
    }

    // Client: submit requests asynchronously, collect replies with a
    // timeout guard (a silent server would not hang the client).
    for (long i = 0; i < kRequests; i++) requests.send(i);
    long replies_seen = 0;
    for (long i = 0; i < kRequests; i++) {
      auto r = mp::cml::recv_timeout(replies, 5e6);
      if (!r.has_value()) {
        std::printf("timed out waiting for a reply!\n");
        break;
      }
      replies_seen++;
    }
    std::printf("client received %ld replies\n", replies_seen);

    // Shut the pool down and collect per-worker counts via join.
    for (auto& w : workers) w.alert();
    for (auto& w : workers) processed_total += w.join();
  });

  std::printf("total processed by the pool: %ld of %d\n", processed_total,
              kRequests);
  return processed_total == kRequests ? 0 : 1;
}
