// The sharded KV service (src/kv) as a real TCP server: one shard owner
// MLthread per proc, connections served over the reactor, no locks anywhere
// on the request path.  By default it drives itself — a loopback client
// fleet runs a mixed GET/SET/DEL/RANGE load, checks every reply against a
// per-client model, and the process exits 0 only if every reply matched.
//
//   ./build/examples/kv_server [--procs N] [--clients N] [--ops N] [--serve]
//
// --serve skips the fleet and listens until killed, so you can talk to it
// from another terminal with e.g.:
//   printf 'SET greeting 5\nhello\nGET greeting\nQUIT\n' | nc 127.0.0.1 <port>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "io/stream.h"
#include "kv/client.h"
#include "kv/server.h"
#include "kv/service.h"
#include "mp/native_platform.h"
#include "threads/scheduler.h"
#include "threads/sync.h"

using mp::io::Duplex;
using mp::io::Listener;
using mp::io::Reactor;
using mp::io::Stream;
using mp::kv::KvClient;
using mp::kv::KvService;
using mp::threads::CountdownLatch;
using mp::threads::Scheduler;

namespace {

int arg_int(int argc, char** argv, const char* name, int fallback) {
  for (int i = 1; i + 1 < argc; i++) {
    if (std::strcmp(argv[i], name) == 0) return std::atoi(argv[i + 1]);
  }
  return fallback;
}

bool arg_flag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; i++) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// One client: a scripted mixed load on a private key prefix, every reply
// checked against a local model.
void client_fleet_member(KvClient& cli, int id, int ops,
                         std::atomic<long>& failures) {
  std::map<std::string, std::string> model;
  const std::string prefix = "c" + std::to_string(id) + ":";
  long bad = 0;
  if (!cli.ping()) bad++;
  for (int i = 0; i < ops; i++) {
    const std::string key = prefix + "k" + std::to_string((i * 7) % 23);
    switch (i % 5) {
      case 0:
      case 1: {
        const std::string val = "v" + std::to_string(id) + "." +
                                std::to_string(i);
        if (!cli.set(key, val)) bad++;
        model[key] = val;
        break;
      }
      case 2:
      case 3: {
        std::string got;
        const bool hit = cli.get(key, &got);
        const auto it = model.find(key);
        if (hit != (it != model.end()) || (hit && got != it->second)) bad++;
        break;
      }
      default: {
        if (i % 10 == 4) {
          const long n = cli.del(key);
          if (n != static_cast<long>(model.erase(key))) bad++;
        } else {
          const auto pairs = cli.range(prefix, prefix + "k~", -1);
          if (pairs.size() != model.size()) bad++;
        }
        break;
      }
    }
  }
  cli.quit();
  failures.fetch_add(bad);
}

}  // namespace

int main(int argc, char** argv) {
  const int procs = arg_int(argc, argv, "--procs", 4);
  const int clients = arg_int(argc, argv, "--clients", 64);
  const int ops = arg_int(argc, argv, "--ops", 100);
  const bool serve_forever = arg_flag(argc, argv, "--serve");

  mp::NativePlatformConfig config;
  config.max_procs = procs;
  mp::NativePlatform platform(config);

  std::atomic<long> failures{0};
  std::atomic<long> served{0};
  Scheduler::run(platform, {}, [&](Scheduler& s) {
    mp::kv::KvConfig cfg;
    cfg.shards = procs;
    KvService svc(s, cfg);
    svc.start();

    Reactor reactor(s);
    Listener listener = Listener::tcp(reactor, 0, std::max(clients, 128));
    std::printf("kv server: %d shards on %d procs, 127.0.0.1:%u\n",
                svc.shards(), procs, listener.port());

    // Per-connection readers are mostly parked in the reactor; small stack
    // slots keep a large connection fleet's memory footprint flat.
    const auto conn_opts = Scheduler::SpawnOpts{}
                               .with_stack(mp::cont::StackClass::kSmall)
                               .with_name("kv-conn");
    if (serve_forever) {
      for (;;) {
        Stream conn = listener.accept();
        s.fork(
            [&svc, conn]() mutable { mp::kv::serve(svc, Duplex{conn, conn}); },
            conn_opts);
      }
    }

    CountdownLatch servers_done(s, clients);
    CountdownLatch clients_done(s, clients);
    s.fork(
        [&] {
          for (int i = 0; i < clients; i++) {
            Stream conn = listener.accept();
            s.fork(
                [&svc, &servers_done, conn]() mutable {
                  mp::kv::serve(svc, Duplex{conn, conn});
                  servers_done.count_down();
                },
                conn_opts);
          }
        },
        Scheduler::SpawnOpts{}.with_name("kv-accept"));

    for (int c = 0; c < clients; c++) {
      s.fork(
          [&, c] {
            Stream conn = Stream::connect_tcp(reactor, listener.port());
            KvClient cli(conn, conn);
            client_fleet_member(cli, c, ops, failures);
            served.fetch_add(1);
            clients_done.count_down();
          },
          Scheduler::SpawnOpts{}.with_name("kv-client"));
    }

    clients_done.await();
    servers_done.await();
    const auto st = svc.stats();
    std::printf("stats: keys=%zu bytes=%zu ops=%llu shards=%d\n", st.keys,
                st.bytes, static_cast<unsigned long long>(st.ops), st.shards);
    svc.stop();
    listener.close();
  });

  std::printf("served %ld clients, %ld reply mismatches\n", served.load(),
              failures.load());
  return failures.load() == 0 && served.load() == clients ? 0 : 1;
}
