# Empty compiler generated dependencies file for time_machine.
# This may be replaced when dependencies are built.
