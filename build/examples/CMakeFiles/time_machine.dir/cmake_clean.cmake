file(REMOVE_RECURSE
  "CMakeFiles/time_machine.dir/time_machine.cpp.o"
  "CMakeFiles/time_machine.dir/time_machine.cpp.o.d"
  "time_machine"
  "time_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
