# Empty dependencies file for primes_pipeline.
# This may be replaced when dependencies are built.
