file(REMOVE_RECURSE
  "CMakeFiles/primes_pipeline.dir/primes_pipeline.cpp.o"
  "CMakeFiles/primes_pipeline.dir/primes_pipeline.cpp.o.d"
  "primes_pipeline"
  "primes_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primes_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
