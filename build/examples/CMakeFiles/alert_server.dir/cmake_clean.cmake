file(REMOVE_RECURSE
  "CMakeFiles/alert_server.dir/alert_server.cpp.o"
  "CMakeFiles/alert_server.dir/alert_server.cpp.o.d"
  "alert_server"
  "alert_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
