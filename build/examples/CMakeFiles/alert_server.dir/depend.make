# Empty dependencies file for alert_server.
# This may be replaced when dependencies are built.
