file(REMOVE_RECURSE
  "libmpnj_cont.a"
)
