# Empty compiler generated dependencies file for mpnj_cont.
# This may be replaced when dependencies are built.
