file(REMOVE_RECURSE
  "CMakeFiles/mpnj_cont.dir/cont.cpp.o"
  "CMakeFiles/mpnj_cont.dir/cont.cpp.o.d"
  "CMakeFiles/mpnj_cont.dir/exec.cpp.o"
  "CMakeFiles/mpnj_cont.dir/exec.cpp.o.d"
  "CMakeFiles/mpnj_cont.dir/segment.cpp.o"
  "CMakeFiles/mpnj_cont.dir/segment.cpp.o.d"
  "libmpnj_cont.a"
  "libmpnj_cont.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpnj_cont.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
