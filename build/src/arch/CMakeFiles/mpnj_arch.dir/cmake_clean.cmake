file(REMOVE_RECURSE
  "CMakeFiles/mpnj_arch.dir/ctx.cpp.o"
  "CMakeFiles/mpnj_arch.dir/ctx.cpp.o.d"
  "CMakeFiles/mpnj_arch.dir/ctx_x86_64.S.o"
  "CMakeFiles/mpnj_arch.dir/panic.cpp.o"
  "CMakeFiles/mpnj_arch.dir/panic.cpp.o.d"
  "libmpnj_arch.a"
  "libmpnj_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/mpnj_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
