
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/arch/ctx_x86_64.S" "/root/repo/build/src/arch/CMakeFiles/mpnj_arch.dir/ctx_x86_64.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/ctx.cpp" "src/arch/CMakeFiles/mpnj_arch.dir/ctx.cpp.o" "gcc" "src/arch/CMakeFiles/mpnj_arch.dir/ctx.cpp.o.d"
  "/root/repo/src/arch/panic.cpp" "src/arch/CMakeFiles/mpnj_arch.dir/panic.cpp.o" "gcc" "src/arch/CMakeFiles/mpnj_arch.dir/panic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
