# Empty compiler generated dependencies file for mpnj_arch.
# This may be replaced when dependencies are built.
