file(REMOVE_RECURSE
  "libmpnj_arch.a"
)
