file(REMOVE_RECURSE
  "libmpnj_gc.a"
)
