file(REMOVE_RECURSE
  "CMakeFiles/mpnj_gc.dir/heap.cpp.o"
  "CMakeFiles/mpnj_gc.dir/heap.cpp.o.d"
  "libmpnj_gc.a"
  "libmpnj_gc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpnj_gc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
