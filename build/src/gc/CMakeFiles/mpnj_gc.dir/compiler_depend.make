# Empty compiler generated dependencies file for mpnj_gc.
# This may be replaced when dependencies are built.
