
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/abisort.cpp" "src/workloads/CMakeFiles/mpnj_workloads.dir/abisort.cpp.o" "gcc" "src/workloads/CMakeFiles/mpnj_workloads.dir/abisort.cpp.o.d"
  "/root/repo/src/workloads/allpairs.cpp" "src/workloads/CMakeFiles/mpnj_workloads.dir/allpairs.cpp.o" "gcc" "src/workloads/CMakeFiles/mpnj_workloads.dir/allpairs.cpp.o.d"
  "/root/repo/src/workloads/mm.cpp" "src/workloads/CMakeFiles/mpnj_workloads.dir/mm.cpp.o" "gcc" "src/workloads/CMakeFiles/mpnj_workloads.dir/mm.cpp.o.d"
  "/root/repo/src/workloads/mst.cpp" "src/workloads/CMakeFiles/mpnj_workloads.dir/mst.cpp.o" "gcc" "src/workloads/CMakeFiles/mpnj_workloads.dir/mst.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/workloads/CMakeFiles/mpnj_workloads.dir/registry.cpp.o" "gcc" "src/workloads/CMakeFiles/mpnj_workloads.dir/registry.cpp.o.d"
  "/root/repo/src/workloads/runner.cpp" "src/workloads/CMakeFiles/mpnj_workloads.dir/runner.cpp.o" "gcc" "src/workloads/CMakeFiles/mpnj_workloads.dir/runner.cpp.o.d"
  "/root/repo/src/workloads/seq.cpp" "src/workloads/CMakeFiles/mpnj_workloads.dir/seq.cpp.o" "gcc" "src/workloads/CMakeFiles/mpnj_workloads.dir/seq.cpp.o.d"
  "/root/repo/src/workloads/simple.cpp" "src/workloads/CMakeFiles/mpnj_workloads.dir/simple.cpp.o" "gcc" "src/workloads/CMakeFiles/mpnj_workloads.dir/simple.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/threads/CMakeFiles/mpnj_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/mpnj_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mpnj_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpnj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cont/CMakeFiles/mpnj_cont.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mpnj_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
