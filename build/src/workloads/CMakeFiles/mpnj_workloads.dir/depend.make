# Empty dependencies file for mpnj_workloads.
# This may be replaced when dependencies are built.
