file(REMOVE_RECURSE
  "CMakeFiles/mpnj_workloads.dir/abisort.cpp.o"
  "CMakeFiles/mpnj_workloads.dir/abisort.cpp.o.d"
  "CMakeFiles/mpnj_workloads.dir/allpairs.cpp.o"
  "CMakeFiles/mpnj_workloads.dir/allpairs.cpp.o.d"
  "CMakeFiles/mpnj_workloads.dir/mm.cpp.o"
  "CMakeFiles/mpnj_workloads.dir/mm.cpp.o.d"
  "CMakeFiles/mpnj_workloads.dir/mst.cpp.o"
  "CMakeFiles/mpnj_workloads.dir/mst.cpp.o.d"
  "CMakeFiles/mpnj_workloads.dir/registry.cpp.o"
  "CMakeFiles/mpnj_workloads.dir/registry.cpp.o.d"
  "CMakeFiles/mpnj_workloads.dir/runner.cpp.o"
  "CMakeFiles/mpnj_workloads.dir/runner.cpp.o.d"
  "CMakeFiles/mpnj_workloads.dir/seq.cpp.o"
  "CMakeFiles/mpnj_workloads.dir/seq.cpp.o.d"
  "CMakeFiles/mpnj_workloads.dir/simple.cpp.o"
  "CMakeFiles/mpnj_workloads.dir/simple.cpp.o.d"
  "libmpnj_workloads.a"
  "libmpnj_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpnj_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
