file(REMOVE_RECURSE
  "libmpnj_workloads.a"
)
