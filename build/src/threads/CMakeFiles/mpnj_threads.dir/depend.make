# Empty dependencies file for mpnj_threads.
# This may be replaced when dependencies are built.
