file(REMOVE_RECURSE
  "CMakeFiles/mpnj_threads.dir/queue.cpp.o"
  "CMakeFiles/mpnj_threads.dir/queue.cpp.o.d"
  "CMakeFiles/mpnj_threads.dir/scheduler.cpp.o"
  "CMakeFiles/mpnj_threads.dir/scheduler.cpp.o.d"
  "CMakeFiles/mpnj_threads.dir/sync.cpp.o"
  "CMakeFiles/mpnj_threads.dir/sync.cpp.o.d"
  "CMakeFiles/mpnj_threads.dir/trace.cpp.o"
  "CMakeFiles/mpnj_threads.dir/trace.cpp.o.d"
  "libmpnj_threads.a"
  "libmpnj_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpnj_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
