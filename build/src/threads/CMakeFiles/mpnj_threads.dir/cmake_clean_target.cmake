file(REMOVE_RECURSE
  "libmpnj_threads.a"
)
