# Empty dependencies file for mpnj_sim.
# This may be replaced when dependencies are built.
