file(REMOVE_RECURSE
  "CMakeFiles/mpnj_sim.dir/engine.cpp.o"
  "CMakeFiles/mpnj_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mpnj_sim.dir/machine.cpp.o"
  "CMakeFiles/mpnj_sim.dir/machine.cpp.o.d"
  "libmpnj_sim.a"
  "libmpnj_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpnj_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
