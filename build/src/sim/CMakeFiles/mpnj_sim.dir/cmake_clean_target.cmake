file(REMOVE_RECURSE
  "libmpnj_sim.a"
)
