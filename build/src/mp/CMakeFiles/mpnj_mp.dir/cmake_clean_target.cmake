file(REMOVE_RECURSE
  "libmpnj_mp.a"
)
