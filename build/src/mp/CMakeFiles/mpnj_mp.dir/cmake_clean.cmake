file(REMOVE_RECURSE
  "CMakeFiles/mpnj_mp.dir/native_platform.cpp.o"
  "CMakeFiles/mpnj_mp.dir/native_platform.cpp.o.d"
  "CMakeFiles/mpnj_mp.dir/platform.cpp.o"
  "CMakeFiles/mpnj_mp.dir/platform.cpp.o.d"
  "CMakeFiles/mpnj_mp.dir/sim_platform.cpp.o"
  "CMakeFiles/mpnj_mp.dir/sim_platform.cpp.o.d"
  "CMakeFiles/mpnj_mp.dir/uni_platform.cpp.o"
  "CMakeFiles/mpnj_mp.dir/uni_platform.cpp.o.d"
  "libmpnj_mp.a"
  "libmpnj_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpnj_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
