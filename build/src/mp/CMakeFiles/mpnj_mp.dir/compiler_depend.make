# Empty compiler generated dependencies file for mpnj_mp.
# This may be replaced when dependencies are built.
