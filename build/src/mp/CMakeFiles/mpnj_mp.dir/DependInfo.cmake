
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mp/native_platform.cpp" "src/mp/CMakeFiles/mpnj_mp.dir/native_platform.cpp.o" "gcc" "src/mp/CMakeFiles/mpnj_mp.dir/native_platform.cpp.o.d"
  "/root/repo/src/mp/platform.cpp" "src/mp/CMakeFiles/mpnj_mp.dir/platform.cpp.o" "gcc" "src/mp/CMakeFiles/mpnj_mp.dir/platform.cpp.o.d"
  "/root/repo/src/mp/sim_platform.cpp" "src/mp/CMakeFiles/mpnj_mp.dir/sim_platform.cpp.o" "gcc" "src/mp/CMakeFiles/mpnj_mp.dir/sim_platform.cpp.o.d"
  "/root/repo/src/mp/uni_platform.cpp" "src/mp/CMakeFiles/mpnj_mp.dir/uni_platform.cpp.o" "gcc" "src/mp/CMakeFiles/mpnj_mp.dir/uni_platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cont/CMakeFiles/mpnj_cont.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/mpnj_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpnj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mpnj_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
