file(REMOVE_RECURSE
  "CMakeFiles/cml_test.dir/cml_test.cpp.o"
  "CMakeFiles/cml_test.dir/cml_test.cpp.o.d"
  "cml_test"
  "cml_test.pdb"
  "cml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
