# Empty compiler generated dependencies file for mlthreads_test.
# This may be replaced when dependencies are built.
