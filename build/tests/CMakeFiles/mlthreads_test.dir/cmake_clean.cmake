file(REMOVE_RECURSE
  "CMakeFiles/mlthreads_test.dir/mlthreads_test.cpp.o"
  "CMakeFiles/mlthreads_test.dir/mlthreads_test.cpp.o.d"
  "mlthreads_test"
  "mlthreads_test.pdb"
  "mlthreads_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlthreads_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
