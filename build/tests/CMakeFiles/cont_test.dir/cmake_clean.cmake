file(REMOVE_RECURSE
  "CMakeFiles/cont_test.dir/cont_test.cpp.o"
  "CMakeFiles/cont_test.dir/cont_test.cpp.o.d"
  "cont_test"
  "cont_test.pdb"
  "cont_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cont_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
