# Empty compiler generated dependencies file for cont_test.
# This may be replaced when dependencies are built.
