file(REMOVE_RECURSE
  "CMakeFiles/uni_platform_test.dir/uni_platform_test.cpp.o"
  "CMakeFiles/uni_platform_test.dir/uni_platform_test.cpp.o.d"
  "uni_platform_test"
  "uni_platform_test.pdb"
  "uni_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uni_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
