# Empty dependencies file for uni_platform_test.
# This may be replaced when dependencies are built.
