# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/arch_test[1]_include.cmake")
include("/root/repo/build/tests/cont_test[1]_include.cmake")
include("/root/repo/build/tests/gc_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/threads_test[1]_include.cmake")
include("/root/repo/build/tests/cml_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/ext_test[1]_include.cmake")
include("/root/repo/build/tests/mlthreads_test[1]_include.cmake")
include("/root/repo/build/tests/sim_engine_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/uni_platform_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
