file(REMOVE_RECURSE
  "CMakeFiles/table_nursery.dir/table_nursery.cpp.o"
  "CMakeFiles/table_nursery.dir/table_nursery.cpp.o.d"
  "table_nursery"
  "table_nursery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_nursery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
