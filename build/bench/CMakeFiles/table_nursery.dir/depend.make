# Empty dependencies file for table_nursery.
# This may be replaced when dependencies are built.
