# Empty dependencies file for micro_threads.
# This may be replaced when dependencies are built.
