file(REMOVE_RECURSE
  "CMakeFiles/micro_threads.dir/micro_threads.cpp.o"
  "CMakeFiles/micro_threads.dir/micro_threads.cpp.o.d"
  "micro_threads"
  "micro_threads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_threads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
