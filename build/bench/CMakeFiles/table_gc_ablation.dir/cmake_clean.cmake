file(REMOVE_RECURSE
  "CMakeFiles/table_gc_ablation.dir/table_gc_ablation.cpp.o"
  "CMakeFiles/table_gc_ablation.dir/table_gc_ablation.cpp.o.d"
  "table_gc_ablation"
  "table_gc_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_gc_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
