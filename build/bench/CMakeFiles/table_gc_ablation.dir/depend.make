# Empty dependencies file for table_gc_ablation.
# This may be replaced when dependencies are built.
