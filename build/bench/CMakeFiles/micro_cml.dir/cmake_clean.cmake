file(REMOVE_RECURSE
  "CMakeFiles/micro_cml.dir/micro_cml.cpp.o"
  "CMakeFiles/micro_cml.dir/micro_cml.cpp.o.d"
  "micro_cml"
  "micro_cml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
