# Empty dependencies file for micro_cml.
# This may be replaced when dependencies are built.
