# Empty dependencies file for table_lock_cost.
# This may be replaced when dependencies are built.
