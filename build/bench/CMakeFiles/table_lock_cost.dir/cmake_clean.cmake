file(REMOVE_RECURSE
  "CMakeFiles/table_lock_cost.dir/table_lock_cost.cpp.o"
  "CMakeFiles/table_lock_cost.dir/table_lock_cost.cpp.o.d"
  "table_lock_cost"
  "table_lock_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_lock_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
