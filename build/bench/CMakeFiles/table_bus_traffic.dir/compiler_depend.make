# Empty compiler generated dependencies file for table_bus_traffic.
# This may be replaced when dependencies are built.
