
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table_bus_traffic.cpp" "bench/CMakeFiles/table_bus_traffic.dir/table_bus_traffic.cpp.o" "gcc" "bench/CMakeFiles/table_bus_traffic.dir/table_bus_traffic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/mpnj_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/threads/CMakeFiles/mpnj_threads.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/mpnj_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mpnj_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gc/CMakeFiles/mpnj_gc.dir/DependInfo.cmake"
  "/root/repo/build/src/cont/CMakeFiles/mpnj_cont.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/mpnj_arch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
