file(REMOVE_RECURSE
  "CMakeFiles/table_bus_traffic.dir/table_bus_traffic.cpp.o"
  "CMakeFiles/table_bus_traffic.dir/table_bus_traffic.cpp.o.d"
  "table_bus_traffic"
  "table_bus_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_bus_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
