# Empty compiler generated dependencies file for fig6_sgi.
# This may be replaced when dependencies are built.
