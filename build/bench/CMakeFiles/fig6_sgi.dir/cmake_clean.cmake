file(REMOVE_RECURSE
  "CMakeFiles/fig6_sgi.dir/fig6_sgi.cpp.o"
  "CMakeFiles/fig6_sgi.dir/fig6_sgi.cpp.o.d"
  "fig6_sgi"
  "fig6_sgi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_sgi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
