file(REMOVE_RECURSE
  "CMakeFiles/table_lock_backoff.dir/table_lock_backoff.cpp.o"
  "CMakeFiles/table_lock_backoff.dir/table_lock_backoff.cpp.o.d"
  "table_lock_backoff"
  "table_lock_backoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_lock_backoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
