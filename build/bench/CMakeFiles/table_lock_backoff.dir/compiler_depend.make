# Empty compiler generated dependencies file for table_lock_backoff.
# This may be replaced when dependencies are built.
