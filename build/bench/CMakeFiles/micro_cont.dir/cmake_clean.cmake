file(REMOVE_RECURSE
  "CMakeFiles/micro_cont.dir/micro_cont.cpp.o"
  "CMakeFiles/micro_cont.dir/micro_cont.cpp.o.d"
  "micro_cont"
  "micro_cont.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_cont.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
