# Empty compiler generated dependencies file for micro_cont.
# This may be replaced when dependencies are built.
