# Empty compiler generated dependencies file for table_queues.
# This may be replaced when dependencies are built.
