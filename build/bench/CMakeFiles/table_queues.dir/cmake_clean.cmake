file(REMOVE_RECURSE
  "CMakeFiles/table_queues.dir/table_queues.cpp.o"
  "CMakeFiles/table_queues.dir/table_queues.cpp.o.d"
  "table_queues"
  "table_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
