# Empty compiler generated dependencies file for table_portability.
# This may be replaced when dependencies are built.
