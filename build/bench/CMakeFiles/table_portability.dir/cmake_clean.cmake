file(REMOVE_RECURSE
  "CMakeFiles/table_portability.dir/table_portability.cpp.o"
  "CMakeFiles/table_portability.dir/table_portability.cpp.o.d"
  "table_portability"
  "table_portability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_portability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
