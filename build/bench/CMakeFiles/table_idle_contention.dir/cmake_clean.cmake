file(REMOVE_RECURSE
  "CMakeFiles/table_idle_contention.dir/table_idle_contention.cpp.o"
  "CMakeFiles/table_idle_contention.dir/table_idle_contention.cpp.o.d"
  "table_idle_contention"
  "table_idle_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_idle_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
