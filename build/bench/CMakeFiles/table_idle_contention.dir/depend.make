# Empty dependencies file for table_idle_contention.
# This may be replaced when dependencies are built.
